//! The community application over the live TCP drivers: same state
//! machines, real sockets, wall-clock time.
//!
//! Covers both drivers: the in-process demo network (`LiveNet`, built via
//! `LiveConfig::network`) and the production serving reactor
//! (`LiveServer`), including its backpressure shedding, slow-client
//! isolation and journal-based restart resume.

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use codec::Wire;
use peerhood::error::ErrorKind;
use peerhood::live::wire::{frame, parse_farewell, FrameBuf, Handshake, VERDICT_ACCEPT};
use peerhood::live::{LiveConfig, LiveServer};
use peerhood::types::DeviceId;
use ph_community::node::CommunityApp;
use ph_community::profile::Profile;
use ph_community::protocol::{Request, Response};
use ph_community::{JournalPersist, OpResult, SERVICE_NAME};

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
    // Live runs in wall-clock time: refresh fast so the test finishes
    // quickly.
    .with_refresh_interval(Duration::from_millis(400))
}

#[test]
fn three_member_community_over_real_sockets() {
    let mut net = LiveConfig::default().network();
    let alice = net
        .spawn("alice-host", member("alice", &["rust", "sauna"]))
        .expect("bind");
    let _bob = net
        .spawn("bob-host", member("bob", &["Rust", "chess"]))
        .expect("bind");
    let _carol = net
        .spawn("carol-host", member("carol", &["rust", "sauna"]))
        .expect("bind");
    net.start();

    // Dynamic groups form across real TCP connections.
    assert!(
        net.run_until(Duration::from_secs(15), |n| {
            let groups = n.app(alice).groups();
            groups
                .iter()
                .any(|g| g.key == "rust" && g.members.len() == 3)
                && groups
                    .iter()
                    .any(|g| g.key == "sauna" && g.members.len() == 2)
        }),
        "groups: {:?}",
        net.app(alice).groups()
    );

    // A fan-out operation over the sockets.
    let op = net.with_app(alice, |app, ctx| app.get_member_list(ctx));
    assert!(net.run_until(Duration::from_secs(10), |n| n
        .app(alice)
        .outcome(op)
        .is_some()));
    match &net.app(alice).outcome(op).expect("completed").result {
        OpResult::Members(names) => assert_eq!(names, &["bob", "carol"]),
        other => panic!("unexpected {other:?}"),
    }

    // A direct message.
    let op = net.with_app(alice, |app, ctx| {
        app.send_message("carol", "hi", "tcp!", ctx)
    });
    assert!(net.run_until(Duration::from_secs(10), |n| n
        .app(alice)
        .outcome(op)
        .is_some()));
    assert_eq!(
        net.app(alice).outcome(op).expect("completed").result,
        OpResult::MessageResult { written: true }
    );
}

// ---------------------------------------------------------------------
// LiveServer: a thin blocking test client speaking the live wire protocol.
// ---------------------------------------------------------------------

struct ThinClient {
    stream: TcpStream,
    frames: FrameBuf,
}

impl ThinClient {
    /// Connects, handshakes for the community service and asserts the
    /// accepting verdict.
    fn connect(addr: SocketAddr, id: u64) -> ThinClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let hs = Handshake {
            from: DeviceId::new(id),
            service: SERVICE_NAME.into(),
            resume: None,
        };
        let mut c = ThinClient {
            stream,
            frames: FrameBuf::new(),
        };
        c.stream.write_all(&frame(&hs.encode())).expect("handshake");
        let verdict = c.recv(Duration::from_secs(10)).expect("verdict frame");
        assert_eq!(
            verdict.first(),
            Some(&VERDICT_ACCEPT),
            "verdict {verdict:?}"
        );
        c
    }

    /// Pops the next frame, reading (with a short poll interval) until
    /// `timeout`.
    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        self.stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        loop {
            if let Ok(Some(f)) = self.frames.pop() {
                return Some(f);
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => return self.frames.pop().ok().flatten(),
                Ok(n) => self.frames.extend(&buf[..n]),
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                }
                Err(_) => return self.frames.pop().ok().flatten(),
            }
        }
    }

    /// One request/response round trip.
    fn round_trip(&mut self, req: &Request) -> Response {
        self.stream
            .write_all(&frame(&req.encode()))
            .expect("write request");
        let f = self.recv(Duration::from_secs(10)).expect("response frame");
        Response::decode_exact(&f).expect("decode response")
    }
}

/// A client that floods requests and never reads: the reactor's shedding
/// victim. Nonblocking so the flood can be pumped from the test thread.
struct StalledClient {
    stream: TcpStream,
    out: Vec<u8>,
    off: usize,
}

impl StalledClient {
    fn connect(addr: SocketAddr, id: u64) -> StalledClient {
        let c = ThinClient::connect(addr, id);
        c.stream.set_nonblocking(true).expect("nonblocking");
        let payload = Request::GetProfile {
            member: "bob".into(),
            requester: format!("gawker-{id}"),
        }
        .encode();
        // Enough pipelined requests that the responses overwhelm any queue
        // cap this test configures (each response carries the profile).
        let mut out = Vec::new();
        for _ in 0..4000 {
            out.extend_from_slice(&frame(&payload));
        }
        StalledClient {
            stream: c.stream,
            out,
            off: 0,
        }
    }

    /// Writes as much of the flood as the socket accepts right now.
    fn pump(&mut self) {
        while self.off < self.out.len() {
            match self.stream.write(&self.out[self.off..]) {
                Ok(0) => return,
                Ok(n) => self.off += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Switches to reading and hunts for the farewell control frame,
    /// draining any buffered responses in front of it.
    fn read_farewell(mut self, timeout: Duration) -> Option<ErrorKind> {
        let deadline = Instant::now() + timeout;
        let mut frames = FrameBuf::new();
        let mut eof = false;
        while Instant::now() < deadline {
            let mut buf = [0u8; 64 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => eof = true,
                Ok(n) => frames.extend(&buf[..n]),
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                Err(_) => eof = true,
            }
            while let Ok(Some(f)) = frames.pop() {
                if let Some(kind) = parse_farewell(&f) {
                    return Some(kind);
                }
            }
            if eof {
                return None;
            }
        }
        None
    }
}

fn serving_bob(queue_cap: usize) -> LiveServer<CommunityApp> {
    LiveConfig::default()
        .with_listen_shards(1)
        .with_queue_cap(queue_cap)
        .with_auto_service_discovery(false)
        .serve("live-daemon", member("bob", &["rust", "sauna", "football"]))
        .expect("spawn server")
}

#[test]
fn shed_client_observes_overloaded_farewell() {
    let server = serving_bob(4 * 1024);
    let mut stalled = StalledClient::connect(server.addr(), 1);

    // Flood without reading until the reactor sheds the connection.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().shed == 0 {
        assert!(Instant::now() < deadline, "server never shed the stall");
        stalled.pump();
        std::thread::sleep(Duration::from_millis(2));
    }

    // The shed client learns *why* from the farewell control frame — the
    // documented, stable wire code for backpressure shedding.
    assert_eq!(
        stalled.read_farewell(Duration::from_secs(10)),
        Some(ErrorKind::Overloaded)
    );
    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    server.shutdown();
}

#[test]
fn stalled_client_does_not_delay_responsive_peers() {
    let server = serving_bob(4 * 1024);
    let mut stalled = StalledClient::connect(server.addr(), 1);
    let mut peers: Vec<ThinClient> = (2..5)
        .map(|id| ThinClient::connect(server.addr(), id))
        .collect();

    // Interleave: pump the stall, then demand a round trip from every
    // responsive peer. A reactor that lets one dead socket back up the
    // daemon would blow the per-round-trip latency bound here.
    let mut slowest = Duration::ZERO;
    for _ in 0..25 {
        stalled.pump();
        for c in peers.iter_mut() {
            let t0 = Instant::now();
            let resp = c.round_trip(&Request::GetOnlineMemberList);
            slowest = slowest.max(t0.elapsed());
            assert_eq!(resp, Response::MemberList(vec!["bob".into()]));
        }
    }
    assert!(
        slowest < Duration::from_secs(2),
        "responsive peer stalled for {slowest:?} behind a dead socket"
    );
    // The stall really happened — isolation was exercised, not vacuous.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().shed == 0 {
        assert!(Instant::now() < deadline, "server never shed the stall");
        stalled.pump();
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
}

#[test]
fn journal_resumes_community_state_across_restart() {
    let mut path = std::env::temp_dir();
    path.push(format!("ph-live-restart-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // First life: boot around the journal, take a mutation over TCP.
    let (persist, _empty) = JournalPersist::open(&path).expect("open journal");
    let server = LiveConfig::default()
        .with_auto_service_discovery(false)
        .with_snapshot_path(&path);
    let server = LiveServer::spawn_with(
        server,
        "live-daemon",
        member("bob", &["rust"]),
        Some(Box::new(persist)),
    )
    .expect("spawn server");
    let mut client = ThinClient::connect(server.addr(), 1);
    assert_eq!(
        client.round_trip(&Request::AddProfileComment {
            member: "bob".into(),
            author: "alice".into(),
            comment: "survives the restart".into(),
        }),
        Response::CommentWritten
    );
    drop(client);
    // Orderly shutdown checkpoints the journal around the final store.
    server.shutdown();

    // Second life: replay the journal and serve the resumed store.
    let (persist, resumed) = JournalPersist::open(&path).expect("reopen journal");
    assert_eq!(
        resumed
            .account("bob")
            .expect("bob survives")
            .profile()
            .comments
            .len(),
        1
    );
    let server = LiveServer::spawn_with(
        LiveConfig::default()
            .with_auto_service_discovery(false)
            .with_snapshot_path(&path),
        "live-daemon",
        CommunityApp::new(resumed).with_refresh_interval(Duration::from_millis(400)),
        Some(Box::new(persist)),
    )
    .expect("respawn server");
    let mut client = ThinClient::connect(server.addr(), 2);
    match client.round_trip(&Request::GetProfile {
        member: "bob".into(),
        requester: "carol".into(),
    }) {
        Response::Profile(view) => {
            assert_eq!(
                view.comments,
                vec!["alice: survives the restart".to_string()]
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
