//! The community application over the live TCP driver: same state
//! machines, real sockets, wall-clock time.

use std::time::Duration;

use peerhood::live::LiveNet;
use ph_community::node::CommunityApp;
use ph_community::profile::Profile;
use ph_community::OpResult;

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
    // Live runs in wall-clock time: refresh fast so the test finishes
    // quickly.
    .with_refresh_interval(Duration::from_millis(400))
}

#[test]
fn three_member_community_over_real_sockets() {
    let mut net = LiveNet::new();
    let alice = net
        .add_node("alice-host", member("alice", &["rust", "sauna"]))
        .expect("bind");
    let _bob = net
        .add_node("bob-host", member("bob", &["Rust", "chess"]))
        .expect("bind");
    let _carol = net
        .add_node("carol-host", member("carol", &["rust", "sauna"]))
        .expect("bind");
    net.start();

    // Dynamic groups form across real TCP connections.
    assert!(
        net.run_until(Duration::from_secs(15), |n| {
            let groups = n.app(alice).groups();
            groups
                .iter()
                .any(|g| g.key == "rust" && g.members.len() == 3)
                && groups
                    .iter()
                    .any(|g| g.key == "sauna" && g.members.len() == 2)
        }),
        "groups: {:?}",
        net.app(alice).groups()
    );

    // A fan-out operation over the sockets.
    let op = net.with_app(alice, |app, ctx| app.get_member_list(ctx));
    assert!(net.run_until(Duration::from_secs(10), |n| n
        .app(alice)
        .outcome(op)
        .is_some()));
    match &net.app(alice).outcome(op).expect("completed").result {
        OpResult::Members(names) => assert_eq!(names, &["bob", "carol"]),
        other => panic!("unexpected {other:?}"),
    }

    // A direct message.
    let op = net.with_app(alice, |app, ctx| {
        app.send_message("carol", "hi", "tcp!", ctx)
    });
    assert!(net.run_until(Duration::from_secs(10), |n| n
        .app(alice)
        .outcome(op)
        .is_some()));
    assert_eq!(
        net.app(alice).outcome(op).expect("completed").result,
        OpResult::MessageResult { written: true }
    );
}
