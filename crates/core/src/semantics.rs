//! Teaching semantics to the environment: synonym-aware interest matching.
//!
//! The thesis's analysis (§5.2.6) names the reference implementation's main
//! weakness: "users interested in riding bicycle can put *biking* or
//! *cycling* as their interest. Even though both have same meaning, the
//! application ... creates two different dynamic groups rather than one
//! single group. Teaching the semantics to the environment is missing." Its
//! conclusion lists exactly this as future work.
//!
//! This module implements that future work. A [`SynonymTable`] is a
//! union-find over normalized interest keys: users *teach* equivalences
//! ("combining terms meaning the same issue", §5.1), and
//! [`MatchPolicy::Semantic`] matching folds each interest to its synonym
//! class before comparison. The semantics ablation experiment (A3 in
//! `DESIGN.md`) measures how much group fragmentation this removes.

use codec::{DecodeError, Wire};
use std::collections::BTreeMap;

use crate::interest::Interest;

/// A user-taught table of interest synonyms (a union-find over normalized
/// interest keys).
///
/// The canonical representative of a class is its lexicographically smallest
/// member, so canonicalization is stable regardless of teaching order.
///
/// # Example
///
/// ```rust
/// use ph_community::semantics::SynonymTable;
/// use ph_community::interest::Interest;
///
/// let mut syn = SynonymTable::new();
/// syn.teach(&Interest::new("biking"), &Interest::new("cycling"));
/// assert_eq!(syn.canonical_key("Cycling"), "biking");
/// assert_eq!(syn.canonical_key("chess"), "chess");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynonymTable {
    /// Maps each known key to its parent; roots are absent.
    parent: BTreeMap<String, String>,
}

impl SynonymTable {
    /// Creates an empty table (every interest is its own class).
    pub fn new() -> Self {
        SynonymTable::default()
    }

    /// Finds the root of `key`'s class.
    fn root<'a>(&'a self, key: &'a str) -> &'a str {
        let mut cur = key;
        while let Some(p) = self.parent.get(cur) {
            cur = p;
        }
        cur
    }

    /// Declares two interests to mean the same thing.
    ///
    /// Classes merge transitively: teaching `(a, b)` then `(b, c)` puts all
    /// three in one class.
    pub fn teach(&mut self, a: &Interest, b: &Interest) {
        let ra = self.root(a.key()).to_owned();
        let rb = self.root(b.key()).to_owned();
        if ra == rb {
            return;
        }
        // Attach the larger root under the smaller one so the canonical
        // representative is the lexicographic minimum of the class.
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(large, small);
    }

    /// The canonical key of an interest given everything taught so far.
    pub fn canonical_key(&self, key_or_text: &str) -> String {
        let normalized = Interest::new(key_or_text);
        self.root(normalized.key()).to_owned()
    }

    /// Whether two interests currently mean the same thing.
    pub fn same(&self, a: &Interest, b: &Interest) -> bool {
        self.root(a.key()) == self.root(b.key())
    }

    /// Number of taught links (not classes).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether nothing has been taught.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// How interests are compared during dynamic group discovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum MatchPolicy {
    /// Normalized string equality only — the behaviour of the thesis's
    /// reference implementation (its §5.2.6 limitation included).
    #[default]
    Exact,
    /// Normalized equality after folding through a [`SynonymTable`] — the
    /// thesis's "semantics teaching" future work.
    Semantic(SynonymTable),
}

impl MatchPolicy {
    /// The group key an interest belongs to under this policy.
    pub fn group_key(&self, interest: &Interest) -> String {
        match self {
            MatchPolicy::Exact => interest.key().to_owned(),
            MatchPolicy::Semantic(table) => table.canonical_key(interest.key()),
        }
    }

    /// Whether two interests match under this policy.
    pub fn matches(&self, a: &Interest, b: &Interest) -> bool {
        match self {
            MatchPolicy::Exact => a == b,
            MatchPolicy::Semantic(table) => table.same(a, b),
        }
    }

    /// Teaches a synonym, upgrading an [`MatchPolicy::Exact`] policy to
    /// semantic matching on first use.
    pub fn teach(&mut self, a: &Interest, b: &Interest) {
        match self {
            MatchPolicy::Semantic(table) => table.teach(a, b),
            MatchPolicy::Exact => {
                let mut table = SynonymTable::new();
                table.teach(a, b);
                *self = MatchPolicy::Semantic(table);
            }
        }
    }
}

impl Wire for SynonymTable {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.parent.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SynonymTable {
            parent: BTreeMap::decode(input)?,
        })
    }
}

impl Wire for MatchPolicy {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            MatchPolicy::Exact => out.push(0),
            MatchPolicy::Semantic(table) => {
                out.push(1);
                table.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(MatchPolicy::Exact),
            1 => Ok(MatchPolicy::Semantic(SynonymTable::decode(input)?)),
            tag => Err(DecodeError::BadTag {
                what: "match policy",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(s: &str) -> Interest {
        Interest::new(s)
    }

    #[test]
    fn untaught_interests_are_distinct() {
        let t = SynonymTable::new();
        assert!(!t.same(&i("biking"), &i("cycling")));
        assert!(t.same(&i("biking"), &i("BIKING")));
        assert!(t.is_empty());
    }

    #[test]
    fn teaching_merges_classes_transitively() {
        let mut t = SynonymTable::new();
        t.teach(&i("biking"), &i("cycling"));
        t.teach(&i("cycling"), &i("bicycle riding"));
        assert!(t.same(&i("biking"), &i("bicycle riding")));
        assert_eq!(
            t.canonical_key("bicycle riding"),
            "bicycle riding".to_owned().min("biking".into())
        );
    }

    #[test]
    fn canonical_is_lexicographic_minimum_regardless_of_order() {
        let mut a = SynonymTable::new();
        a.teach(&i("zumba"), &i("aerobics"));
        a.teach(&i("aerobics"), &i("fitness dance"));
        let mut b = SynonymTable::new();
        b.teach(&i("fitness dance"), &i("zumba"));
        b.teach(&i("zumba"), &i("aerobics"));
        for key in ["zumba", "aerobics", "fitness dance"] {
            assert_eq!(a.canonical_key(key), "aerobics");
            assert_eq!(b.canonical_key(key), "aerobics");
        }
    }

    #[test]
    fn teaching_same_pair_twice_is_idempotent() {
        let mut t = SynonymTable::new();
        t.teach(&i("a"), &i("b"));
        let before = t.clone();
        t.teach(&i("b"), &i("a"));
        assert_eq!(t, before);
    }

    #[test]
    fn exact_policy_is_plain_equality() {
        let p = MatchPolicy::Exact;
        assert!(p.matches(&i("chess"), &i("Chess")));
        assert!(!p.matches(&i("biking"), &i("cycling")));
        assert_eq!(p.group_key(&i("Chess")), "chess");
    }

    #[test]
    fn semantic_policy_folds_synonyms() {
        let mut p = MatchPolicy::Exact;
        p.teach(&i("biking"), &i("cycling"));
        assert!(p.matches(&i("Biking"), &i("CYCLING")));
        assert_eq!(p.group_key(&i("cycling")), "biking");
        assert_eq!(p.group_key(&i("chess")), "chess");
    }

    #[test]
    fn policy_wire_round_trip() {
        let mut p = MatchPolicy::Exact;
        assert_eq!(MatchPolicy::decode_exact(&p.encode()).unwrap(), p);
        p.teach(&i("a"), &i("b"));
        assert_eq!(MatchPolicy::decode_exact(&p.encode()).unwrap(), p);
        assert!(matches!(
            MatchPolicy::decode_exact(&[9]),
            Err(DecodeError::BadTag {
                what: "match policy",
                tag: 9
            })
        ));
    }
}
