//! User interests — the raw material of dynamic group discovery.
//!
//! "The major factors involving in the formation of the social networks are
//! interest ..." (thesis §3.1). An [`Interest`] is a user-entered label; the
//! type normalizes it (trimming, lowercasing, whitespace collapsing) so that
//! `"England Football"` and `" england  football "` name the same interest,
//! while preserving the text the user typed for display.
//!
//! Whether *differently named* interests (e.g. `biking` / `cycling`) count
//! as the same is the business of [`crate::semantics`].

use codec::{decode_seq, DecodeError, Wire};
use std::collections::BTreeMap;
use std::fmt;

/// One user interest, normalized for matching but remembering its display
/// form.
///
/// # Example
///
/// ```rust
/// use ph_community::interest::Interest;
///
/// let a = Interest::new(" England  Football ");
/// let b = Interest::new("england football");
/// assert_eq!(a, b);                     // identity is the normalized key
/// assert_eq!(a.key(), "england football");
/// assert_eq!(a.display(), "England Football");
/// ```
#[derive(Clone, Debug)]
pub struct Interest {
    display: String,
    key: String,
}

impl Interest {
    /// Creates an interest from user input.
    pub fn new(text: impl AsRef<str>) -> Self {
        let display = text
            .as_ref()
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        let key = display.to_lowercase();
        Interest { display, key }
    }

    /// The normalized matching key (lowercase, single-spaced).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The human-readable form (first writer's capitalization).
    pub fn display(&self) -> &str {
        &self.display
    }

    /// Whether the user typed only whitespace.
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }
}

impl PartialEq for Interest {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Interest {}

impl PartialOrd for Interest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Interest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl std::hash::Hash for Interest {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Display for Interest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

impl From<&str> for Interest {
    fn from(s: &str) -> Self {
        Interest::new(s)
    }
}

impl From<String> for Interest {
    fn from(s: String) -> Self {
        Interest::new(s)
    }
}

/// An ordered, duplicate-free set of interests belonging to one profile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterestSet {
    // Keyed by normalized key; value is the full Interest (with display).
    items: BTreeMap<String, Interest>,
}

impl InterestSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        InterestSet::default()
    }

    /// Adds an interest; returns `false` if it was already present (by
    /// normalized key) or empty.
    pub fn add(&mut self, interest: impl Into<Interest>) -> bool {
        let interest = interest.into();
        if interest.is_empty() {
            return false;
        }
        match self.items.entry(interest.key().to_owned()) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(interest);
                true
            }
        }
    }

    /// Removes an interest by any spelling; returns whether it was present.
    pub fn remove(&mut self, interest: impl Into<Interest>) -> bool {
        self.items.remove(interest.into().key()).is_some()
    }

    /// Whether an interest (by normalized key) is present.
    pub fn contains(&self, interest: &Interest) -> bool {
        self.items.contains_key(interest.key())
    }

    /// Iterates interests in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Interest> {
        self.items.values()
    }

    /// Number of interests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Snapshot as a vector.
    pub fn to_vec(&self) -> Vec<Interest> {
        self.items.values().cloned().collect()
    }
}

impl FromIterator<Interest> for InterestSet {
    fn from_iter<T: IntoIterator<Item = Interest>>(iter: T) -> Self {
        let mut set = InterestSet::new();
        for i in iter {
            set.add(i);
        }
        set
    }
}

impl<'a> FromIterator<&'a str> for InterestSet {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        iter.into_iter().map(Interest::new).collect()
    }
}

impl Extend<Interest> for InterestSet {
    fn extend<T: IntoIterator<Item = Interest>>(&mut self, iter: T) {
        for i in iter {
            self.add(i);
        }
    }
}

impl Wire for Interest {
    // Only the display form travels; the matching key is derived on decode,
    // which keeps the display/key invariant true by construction.
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.display.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Interest::new(String::decode(input)?))
    }
}

impl Wire for InterestSet {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.items.len() as u32).encode_to(out);
        for i in self.items.values() {
            i.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(decode_seq::<Interest>(input)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_and_case() {
        let i = Interest::new("  ICE   Hockey ");
        assert_eq!(i.key(), "ice hockey");
        assert_eq!(i.display(), "ICE Hockey");
        assert_eq!(i.to_string(), "ICE Hockey");
    }

    #[test]
    fn equality_ignores_display_form() {
        assert_eq!(Interest::new("Biking"), Interest::new("bIKING"));
        assert_ne!(Interest::new("biking"), Interest::new("cycling"));
    }

    #[test]
    fn empty_input_detected() {
        assert!(Interest::new("   ").is_empty());
        assert!(!Interest::new("x").is_empty());
    }

    #[test]
    fn set_dedups_by_key() {
        let mut s = InterestSet::new();
        assert!(s.add("Football"));
        assert!(!s.add("FOOTBALL"));
        assert!(!s.add("   "));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Interest::new("football")));
    }

    #[test]
    fn set_remove() {
        let mut s: InterestSet = ["a", "b"].into_iter().collect();
        assert!(s.remove("A"));
        assert!(!s.remove("A"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let s: InterestSet = ["zebra", "Alpha", "maple"].into_iter().collect();
        let keys: Vec<&str> = s.iter().map(Interest::key).collect();
        assert_eq!(keys, vec!["alpha", "maple", "zebra"]);
    }

    #[test]
    fn wire_round_trip_preserves_display_forms() {
        let s: InterestSet = ["Football", "Ice Hockey"].into_iter().collect();
        let back = InterestSet::decode_exact(&s.encode()).unwrap();
        assert_eq!(s, back);
        let displays: Vec<&str> = back.iter().map(Interest::display).collect();
        assert_eq!(displays, vec!["Football", "Ice Hockey"]);
        let i = Interest::new(" ICE  Hockey ");
        assert_eq!(
            Interest::decode_exact(&i.encode()).unwrap().display(),
            "ICE Hockey"
        );
    }

    #[test]
    fn extend_and_collect() {
        let mut s = InterestSet::new();
        s.extend(vec![Interest::new("a"), Interest::new("A")]);
        assert_eq!(s.len(), 1);
        let v: Vec<Interest> = s.to_vec();
        assert_eq!(v[0].key(), "a");
    }
}
