//! Shared content: the trusted-only file sharing feature.
//!
//! "As an example of trusted-only applications, file sharing and discovering
//! shared lists of others has been implemented" (§5.2.4). A member shares
//! named items; only members on their trusted-friends list may list
//! (Figure 16) or fetch them.

use codec::{read_len, Bytes, DecodeError, Wire};
use std::collections::BTreeMap;
use std::fmt;

/// Metadata of one shared item, as sent in `PS_GETSHAREDCONTENT` replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentInfo {
    /// File name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Free-form kind ("photo", "music", …).
    pub kind: String,
}

impl fmt::Display for ContentInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes, {})", self.name, self.size, self.kind)
    }
}

/// The set of items one member shares, with their bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentStore {
    items: BTreeMap<String, SharedItem>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct SharedItem {
    kind: String,
    /// Shared buffer: fetching an item clones a refcount, not the payload.
    data: Bytes,
}

impl ContentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ContentStore::default()
    }

    /// Shares (or replaces) an item.
    pub fn share(
        &mut self,
        name: impl Into<String>,
        kind: impl Into<String>,
        data: impl Into<Bytes>,
    ) {
        self.items.insert(
            name.into(),
            SharedItem {
                kind: kind.into(),
                data: data.into(),
            },
        );
    }

    /// Stops sharing an item; returns whether it was shared.
    pub fn unshare(&mut self, name: &str) -> bool {
        self.items.remove(name).is_some()
    }

    /// The shareable listing (metadata only).
    pub fn listing(&self) -> Vec<ContentInfo> {
        self.items
            .iter()
            .map(|(name, item)| ContentInfo {
                name: name.clone(),
                size: item.data.len() as u64,
                kind: item.kind.clone(),
            })
            .collect()
    }

    /// The bytes of one item, if shared. Cloning the returned [`Bytes`]
    /// shares the payload instead of copying it.
    pub fn fetch(&self, name: &str) -> Option<&Bytes> {
        self.items.get(name).map(|i| &i.data)
    }

    /// Number of shared items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is shared.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Wire for ContentInfo {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.name.encode_to(out);
        self.size.encode_to(out);
        self.kind.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ContentInfo {
            name: String::decode(input)?,
            size: u64::decode(input)?,
            kind: String::decode(input)?,
        })
    }
}

impl Wire for SharedItem {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.kind.encode_to(out);
        self.data.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SharedItem {
            kind: String::decode(input)?,
            data: Bytes::decode(input)?,
        })
    }
}

impl Wire for ContentStore {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.items.len() as u32).encode_to(out);
        for (name, item) in &self.items {
            name.encode_to(out);
            item.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let mut items = BTreeMap::new();
        for _ in 0..n {
            let name = String::decode(input)?;
            items.insert(name, SharedItem::decode(input)?);
        }
        Ok(ContentStore { items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_list_fetch_unshare() {
        let mut s = ContentStore::new();
        s.share("song.mp3", "music", vec![1, 2, 3]);
        s.share("pic.jpg", "photo", vec![4; 10]);
        let listing = s.listing();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "pic.jpg"); // name order
        assert_eq!(listing[1].size, 3);
        assert_eq!(s.fetch("song.mp3").unwrap().as_slice(), [1u8, 2, 3]);
        assert!(s.unshare("song.mp3"));
        assert!(!s.unshare("song.mp3"));
        assert_eq!(s.fetch("song.mp3"), None);
    }

    #[test]
    fn sharing_same_name_replaces() {
        let mut s = ContentStore::new();
        s.share("a", "x", vec![1]);
        s.share("a", "y", vec![1, 2]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.listing()[0].kind, "y");
    }

    #[test]
    fn content_store_wire_round_trip() {
        let mut s = ContentStore::new();
        s.share("song.mp3", "music", vec![1, 2, 3]);
        s.share("pic.jpg", "photo", vec![4; 10]);
        assert_eq!(ContentStore::decode_exact(&s.encode()).unwrap(), s);
    }

    #[test]
    fn display_of_content_info() {
        let c = ContentInfo {
            name: "a.txt".into(),
            size: 5,
            kind: "text".into(),
        };
        assert_eq!(c.to_string(), "a.txt (5 bytes, text)");
    }
}
