//! The PeerHood Community application node: client + server in one PTD.
//!
//! "The test application is a client server application and every device
//! must have both the client and server" (§5.2.3). [`CommunityApp`]
//! implements [`peerhood::Application`]:
//!
//! * as a **server** it registers the `"PeerHoodCommunity"` service
//!   (Figure 8) and answers every Table 6 request from its
//!   [`MemberStore`];
//! * as a **client** it reacts to PeerHood discovery events, learns
//!   neighbors' member names and interest lists, and runs the **dynamic
//!   group discovery** algorithm (Figure 6) whenever the neighborhood
//!   changes;
//! * **user operations** — the features of Table 7 and the message
//!   sequences of Figures 11–17 — are exposed as methods that start
//!   asynchronous [`OpId`]-tracked operations whose [`OpOutcome`]s can be
//!   polled.
//!
//! ## Connection modes
//!
//! The thesis's reference client (Figure 9) *connects to every nearby
//! server anew for each operation*, sequentially — which is why its
//! measured member-list and profile times (Table 8) are dominated by
//! Bluetooth connection setup. [`OpMode::PerOperation`] reproduces that
//! behaviour faithfully; [`OpMode::Persistent`] is the obvious
//! optimization (keep one connection per peer alive), used as an ablation
//! in the evaluation harness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use codec::Bytes;

use netsim::SimTime;
use peerhood::api::AppEvent;
use peerhood::app::{AppCtx, Application};
use peerhood::service::ServiceInfo;
use peerhood::types::{ConnId, DeviceId};

use peerhood::gossip::GossipConfig;

use crate::content::ContentInfo;
use crate::discovery::Discovery;
use crate::epidemic::{GossipNews, GossipRuntime};
use crate::error::CommunityError;
use crate::groups::{GroupEvent, GroupRegistry};
use crate::interest::Interest;
use crate::profile::ProfileView;
use crate::protocol::{Request, Response};
use crate::semantics::MatchPolicy;
use crate::server::{handle_request_cached, ReplayCache};
use crate::store::MemberStore;

/// The PeerHood service name of the community application (Figure 8).
pub const SERVICE_NAME: &str = "PeerHoodCommunity";

/// Timer token for the periodic peer refresh.
const REFRESH_TIMER: u64 = 1;

/// Timer token for the gossip housekeeping tick (graft retries, shuffles,
/// membership re-announcements).
const GOSSIP_TIMER: u64 = 2;

/// Timer-token base for deferred operation starts (fresh-inquiry mode);
/// the operation id is added to it.
const OP_START_TIMER_BASE: u64 = 1_000;

/// Timer-token base for per-request retry deadlines; the request sequence
/// number is added to it. Far above `OP_START_TIMER_BASE + OpId`, so the
/// token spaces cannot collide.
const RETRY_TIMER_BASE: u64 = 1_000_000;

/// Client-side fault tolerance for Table 6 requests (opt-in via
/// [`CommunityApp::with_fault_tolerance`]).
///
/// Every request sent on a client connection gets a deadline; an
/// unanswered request is re-sent up to `max_retries` times and the
/// connection is torn down when the retries are exhausted (which resumes
/// any per-operation plan on the next device). Mutating requests are
/// wrapped in [`Request::Idempotent`] so a retry can never double-apply a
/// comment or message on the server.
///
/// `request_timeout` must stay far above the worst simulated round-trip
/// (GPRS + a large profile is well under a second) so that a retry only
/// ever races a *lost* response, not a slow one.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long to wait for a response before re-sending.
    pub request_timeout: Duration,
    /// How many times to re-send before giving up on the connection.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            request_timeout: Duration::from_secs(5),
            max_retries: 2,
        }
    }
}

/// FNV-1a of the device name: the high half of every idempotency token, so
/// two clients retrying against the same server can never collide in its
/// replay cache.
fn client_token_half(actor: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in actor.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & 0xFFFF_FFFF) << 32
}

/// How the client reaches neighbor servers for operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OpMode {
    /// Keep one connection per community peer alive and reuse it (the
    /// optimized mode; our default).
    #[default]
    Persistent,
    /// Open fresh connections, one neighbor at a time, for every operation
    /// and close them afterwards — exactly what the thesis's reference
    /// client does (Figure 9), and the configuration used to regenerate
    /// Table 8.
    PerOperation,
}

/// Identifier of one asynchronous user operation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(u64);

impl OpId {
    /// The raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Result data of a completed operation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum OpResult {
    /// `get_member_list`: online member names across the neighborhood
    /// (Figure 11).
    Members(Vec<String>),
    /// `get_interest_list`: deduplicated interests across the neighborhood
    /// (Figure 12).
    Interests(Vec<String>),
    /// `get_interested_members`: members holding one interest.
    InterestedMembers(Vec<String>),
    /// `view_profile`: the profile, or `None` if no device hosted the
    /// member (all answered `NO_MEMBERS_YET`; Figure 13).
    Profile(Option<ProfileView>),
    /// `put_comment`: whether any device accepted the comment (Figure 14).
    CommentResult {
        /// `true` when a server wrote the comment.
        written: bool,
    },
    /// `view_trusted_friends`: the list, or `None` if the member was not
    /// found (Figure 15).
    TrustedFriends(Option<Vec<String>>),
    /// `view_shared_content` (Figure 16).
    SharedContent(SharedOutcome),
    /// `send_message`: whether the receiver wrote it (Figure 17's
    /// `SUCCESSFULLY_WRITTEN` / `UNSUCCESSFULL`).
    MessageResult {
        /// `true` on `SUCCESSFULLY_WRITTEN`.
        written: bool,
    },
    /// `fetch_content`: the item bytes, or `None` when refused/missing.
    Content(Option<(String, codec::Bytes)>),
    /// The operation failed before any network exchange.
    Failed(CommunityError),
}

/// Outcome of `view_shared_content`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SharedOutcome {
    /// The owner has not accepted us as a trusted friend
    /// (`NOT_TRUSTED_YET`).
    NotTrusted,
    /// The shared-content listing.
    Listing(Vec<ContentInfo>),
    /// No reachable device hosts the member.
    NoMember,
}

/// A completed operation with its timing (the raw material of Table 8).
#[derive(Clone, Debug, PartialEq)]
pub struct OpOutcome {
    /// The operation this outcome belongs to.
    pub id: OpId,
    /// When the user started it.
    pub started: SimTime,
    /// When the last response arrived.
    pub finished: SimTime,
    /// The result data.
    pub result: OpResult,
}

impl OpOutcome {
    /// Wall-clock duration of the operation.
    pub fn duration(&self) -> Duration {
        self.finished.saturating_since(self.started)
    }
}

/// What a response on a client connection is expected to answer.
#[derive(Clone, Debug, PartialEq)]
enum Pending {
    /// Automatic member-name probe (persistent mode).
    AutoMemberName,
    /// Automatic interest fetch (persistent mode).
    AutoInterests,
    /// A gossip batch; the response piggybacks the peer's queued batch.
    Gossip,
    /// Part of an operation.
    Op(OpId),
}

/// One expected response on a client connection, keyed by the sequence
/// number of the request that asked for it (the retry-deadline key).
#[derive(Clone, Debug, PartialEq)]
struct PendingEntry {
    seq: u64,
    what: Pending,
}

/// Retry bookkeeping for one in-flight request (fault-tolerant mode).
#[derive(Debug)]
struct RetryEntry {
    conn: ConnId,
    device: DeviceId,
    /// The exact frame to re-send — for mutating requests this is the
    /// [`Request::Idempotent`] envelope, so every retry carries the same
    /// token and the server applies the operation at most once.
    request: Request,
    attempts: u32,
}

#[derive(Clone, Debug, PartialEq)]
enum ConnState {
    Disconnected,
    Connecting,
    Ready(ConnId),
}

#[derive(Debug)]
struct Peer {
    device_name: String,
    has_service: bool,
    /// The persistent connection (unused in [`OpMode::PerOperation`]).
    conn: ConnState,
    member: Option<String>,
    interests: Vec<Interest>,
}

impl Peer {
    fn new(device_name: String) -> Self {
        Peer {
            device_name,
            has_service: false,
            conn: ConnState::Disconnected,
            member: None,
            interests: Vec::new(),
        }
    }

    fn ready_conn(&self) -> Option<ConnId> {
        match self.conn {
            ConnState::Ready(c) => Some(c),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum OpKind {
    /// Background neighbor probe (per-operation mode): fetch member name +
    /// interests from every community device, then recompute groups.
    Probe,
    MemberList,
    InterestList,
    InterestedMembers,
    ViewProfile,
    PutComment,
    TrustedFriends,
    /// Two-phase (Figure 16): trust check, then the listing.
    SharedContent {
        member: String,
    },
    SendMessage,
    FetchContent,
}

#[derive(Debug, Default)]
struct OpAcc {
    names: BTreeSet<String>,
    profile: Option<ProfileView>,
    trusted: Option<Vec<String>>,
    listing: Option<Vec<ContentInfo>>,
    content: Option<(String, codec::Bytes)>,
    written: bool,
    not_trusted: bool,
}

/// Per-operation connection plan: visit each device in turn with fresh
/// connections (the Figure 9 client loop).
#[derive(Debug)]
struct OpPlan {
    requests: Vec<Request>,
    remaining: VecDeque<DeviceId>,
    current: Option<(DeviceId, Option<ConnId>)>,
}

#[derive(Debug)]
struct ActiveOp {
    kind: OpKind,
    started: SimTime,
    /// Responses still expected, per connection.
    outstanding: BTreeMap<ConnId, u32>,
    acc: OpAcc,
    plan: Option<OpPlan>,
}

impl ActiveOp {
    fn expect(&mut self, conn: ConnId) {
        *self.outstanding.entry(conn).or_insert(0) += 1;
    }

    fn outstanding_total(&self) -> u32 {
        self.outstanding.values().sum()
    }
}

/// The social-networking application running on one device.
///
/// Constructed around a [`MemberStore`]; [`CommunityApp::login`] before (or
/// after) the cluster starts, then drive user operations through
/// [`Cluster::with_app`](peerhood::sim::Cluster::with_app). See the crate
/// docs for a complete example.
#[derive(Debug)]
pub struct CommunityApp {
    store: MemberStore,
    policy: MatchPolicy,
    registry: GroupRegistry,
    peers: BTreeMap<DeviceId, Peer>,
    conn_to_peer: BTreeMap<ConnId, DeviceId>,
    /// Pending responses expected on each of our client connections.
    conn_pending: BTreeMap<ConnId, VecDeque<PendingEntry>>,
    /// Incoming (server-side) connections with the client device's name.
    server_conns: BTreeMap<ConnId, String>,
    /// Operations awaiting a connection to a device, in request order.
    op_connects: BTreeMap<DeviceId, VecDeque<OpId>>,
    ops: BTreeMap<OpId, ActiveOp>,
    completed: Vec<OpOutcome>,
    next_op: u64,
    active_probe: Option<OpId>,
    group_events: Vec<(SimTime, GroupEvent)>,
    started_at: Option<SimTime>,
    first_group_at: Option<SimTime>,
    refresh_interval: Duration,
    op_mode: OpMode,
    fresh_inquiry_per_op: bool,
    deferred_ops: BTreeMap<u64, OpId>,
    /// Client-side retry policy; `None` (the default) disables all retry
    /// machinery and idempotency envelopes — the pre-fault-layer behavior.
    fault_tolerance: Option<RetryPolicy>,
    /// Per-request retry state, keyed by request sequence number.
    retry_timers: BTreeMap<u64, RetryEntry>,
    next_req_seq: u64,
    /// Server-side replay protection for [`Request::Idempotent`] frames.
    /// Always on: it only ever acts when a client sends the envelope, so
    /// fault-free runs are byte-identical with or without it.
    replay: ReplayCache,
    /// Gossip configuration requested via the builder, consumed at start.
    gossip_cfg: Option<GossipConfig>,
    /// The gossip layer, present once enabled (builder or daemon config).
    gossip: Option<GossipRuntime>,
    /// Gossip messages queued per destination device name, waiting for a
    /// usable client connection (or for the peer to poll us, in which case
    /// they piggyback on the `GOSSIP_REPLY`).
    gossip_queues: BTreeMap<String, Vec<peerhood::gossip::GossipMsg>>,
}

impl CommunityApp {
    /// Creates an application around a member store (create accounts on
    /// the store first via [`MemberStore::create_account`]).
    pub fn new(store: MemberStore) -> Self {
        CommunityApp {
            store,
            policy: MatchPolicy::Exact,
            registry: GroupRegistry::new(""),
            peers: BTreeMap::new(),
            conn_to_peer: BTreeMap::new(),
            conn_pending: BTreeMap::new(),
            server_conns: BTreeMap::new(),
            op_connects: BTreeMap::new(),
            ops: BTreeMap::new(),
            completed: Vec::new(),
            next_op: 0,
            active_probe: None,
            group_events: Vec::new(),
            started_at: None,
            first_group_at: None,
            refresh_interval: Duration::from_secs(20),
            op_mode: OpMode::Persistent,
            fresh_inquiry_per_op: false,
            deferred_ops: BTreeMap::new(),
            fault_tolerance: None,
            retry_timers: BTreeMap::new(),
            next_req_seq: 0,
            replay: ReplayCache::new(1024),
            gossip_cfg: None,
            gossip: None,
            gossip_queues: BTreeMap::new(),
        }
    }

    /// Convenience: a store with one account, already logged in.
    pub fn with_member(username: &str, password: &str, profile: crate::profile::Profile) -> Self {
        let mut store = MemberStore::new();
        store
            .create_account(username, password, profile)
            .expect("fresh store");
        let mut app = CommunityApp::new(store);
        app.login(username, password).expect("just created");
        app
    }

    /// Overrides the periodic refresh interval (builder style).
    pub fn with_refresh_interval(mut self, interval: Duration) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Selects the connection mode (builder style). See [`OpMode`].
    pub fn with_op_mode(mut self, mode: OpMode) -> Self {
        self.op_mode = mode;
        self
    }

    /// In [`OpMode::PerOperation`], make every user operation begin with a
    /// blocking device refresh — one full Bluetooth inquiry window — before
    /// connecting (builder style). This mirrors the thesis client's "gets
    /// the list of all nearby PeerHood capable devices" step (Figure 9) and
    /// is the configuration used to regenerate Table 8's PeerHood column.
    pub fn with_fresh_inquiry_per_op(mut self, on: bool) -> Self {
        self.fresh_inquiry_per_op = on;
        self
    }

    /// Enables client-side fault tolerance (builder style): per-request
    /// timeouts, bounded re-sends, and [`Request::Idempotent`] envelopes
    /// around mutating requests. See [`RetryPolicy`].
    pub fn with_fault_tolerance(mut self, policy: RetryPolicy) -> Self {
        self.fault_tolerance = Some(policy);
        self
    }

    /// Enables the epidemic gossip layer (builder style): bounded partial
    /// views over the radio neighborhood plus eager-push/lazy-pull
    /// dissemination of membership, group events, and shared content. The
    /// same layer is enabled automatically when the node runs under a
    /// [`peerhood::DaemonConfig`] built with `with_gossip`.
    pub fn with_gossip(mut self, config: GossipConfig) -> Self {
        self.gossip_cfg = Some(config);
        self
    }

    /// The active connection mode.
    pub fn op_mode(&self) -> OpMode {
        self.op_mode
    }

    /// The active client-side retry policy, if fault tolerance is enabled.
    pub fn fault_tolerance(&self) -> Option<RetryPolicy> {
        self.fault_tolerance
    }

    // ------------------------------------------------------------------
    // Local user management
    // ------------------------------------------------------------------

    /// Logs a user in (Table 7's login with valid username and password).
    ///
    /// # Errors
    ///
    /// Propagates [`CommunityError::InvalidCredentials`].
    pub fn login(&mut self, username: &str, password: &str) -> Result<(), CommunityError> {
        self.store.login(username, password)?;
        self.registry = GroupRegistry::new(username);
        Ok(())
    }

    /// Logs the current user out.
    pub fn logout(&mut self) {
        self.store.logout();
        self.registry = GroupRegistry::new("");
    }

    /// The logged-in member name.
    pub fn member(&self) -> Option<&str> {
        self.store.active_member()
    }

    /// Read access to the local member store.
    pub fn store(&self) -> &MemberStore {
        &self.store
    }

    /// Mutable access to the local member store (profile editing, trusted
    /// friends, shared content — all local features of Table 7).
    pub fn store_mut(&mut self) -> &mut MemberStore {
        &mut self.store
    }

    /// Adds an interest to the active profile and re-runs group discovery.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NotLoggedIn`] without a session.
    pub fn add_interest(
        &mut self,
        interest: impl Into<Interest>,
        ctx: &mut AppCtx<'_>,
    ) -> Result<(), CommunityError> {
        self.store
            .require_active()?
            .profile_mut()
            .interests
            .add(interest);
        self.recompute_groups(ctx);
        Ok(())
    }

    /// Removes an interest from the active profile and re-runs group
    /// discovery.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NotLoggedIn`] without a session.
    pub fn remove_interest(
        &mut self,
        interest: impl Into<Interest>,
        ctx: &mut AppCtx<'_>,
    ) -> Result<(), CommunityError> {
        self.store
            .require_active()?
            .profile_mut()
            .interests
            .remove(interest);
        self.recompute_groups(ctx);
        Ok(())
    }

    /// Teaches the environment that two interest terms mean the same issue
    /// (§5.1 "users may teach the semantics to the environment") and
    /// re-runs group discovery.
    pub fn teach_synonym(
        &mut self,
        a: impl Into<Interest>,
        b: impl Into<Interest>,
        ctx: &mut AppCtx<'_>,
    ) {
        self.policy.teach(&a.into(), &b.into());
        self.recompute_groups(ctx);
    }

    /// Adds a member to the trusted-friends list.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NotLoggedIn`] without a session.
    pub fn add_trusted(&mut self, member: impl Into<String>) -> Result<(), CommunityError> {
        self.store.require_active()?.trusted.insert(member.into());
        Ok(())
    }

    /// Removes a member from the trusted-friends list.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NotLoggedIn`] without a session.
    pub fn remove_trusted(&mut self, member: &str) -> Result<(), CommunityError> {
        self.store.require_active()?.trusted.remove(member);
        Ok(())
    }

    /// Who has viewed the active profile (Table 7: *View Own Viewers and
    /// Comments*).
    pub fn my_visitors(&self) -> Vec<crate::profile::Visit> {
        self.store
            .active_account()
            .map(|a| a.profile().visitors.clone())
            .unwrap_or_default()
    }

    /// Comments other members left on the active profile.
    pub fn my_comments(&self) -> Vec<crate::profile::Comment> {
        self.store
            .active_account()
            .map(|a| a.profile().comments.clone())
            .unwrap_or_default()
    }

    /// Received messages, oldest first (Table 7: *Send/Receive Messages*).
    pub fn inbox(&self) -> Vec<crate::message::MailMessage> {
        self.store
            .active_account()
            .map(|a| a.mailbox.inbox().to_vec())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Group access
    // ------------------------------------------------------------------

    /// The current effective groups (dynamic + manual adjustments).
    pub fn groups(&self) -> Vec<crate::discovery::Group> {
        self.registry.groups()
    }

    /// Groups the local user belongs to.
    pub fn my_groups(&self) -> Vec<crate::discovery::Group> {
        self.registry.my_groups()
    }

    /// Manually joins a visible group (Table 7).
    pub fn join_group(&mut self, key: &str) -> bool {
        self.registry.join(key)
    }

    /// Manually leaves a group (Table 7).
    pub fn leave_group(&mut self, key: &str) -> bool {
        self.registry.leave(key)
    }

    /// Every group membership change observed so far, with its time.
    pub fn group_events(&self) -> &[(SimTime, GroupEvent)] {
        &self.group_events
    }

    /// When the application started (the reference point for group-search
    /// timing).
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// When the local user's first group formed — `started_at` to
    /// `first_group_at` is Table 8's "group search time".
    pub fn first_group_at(&self) -> Option<SimTime> {
        self.first_group_at
    }

    /// Names of members currently known in the neighborhood.
    pub fn known_members(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .peers
            .values()
            .filter_map(|p| p.member.clone())
            .collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------------
    // Gossip access
    // ------------------------------------------------------------------

    /// The gossip runtime, once the layer is enabled (views, stats, blob
    /// log).
    pub fn gossip(&self) -> Option<&GossipRuntime> {
        self.gossip.as_ref()
    }

    /// Publishes a content blob into the gossip layer for epidemic
    /// dissemination to every reachable member, multi-hop. Returns the
    /// gossip message id.
    ///
    /// # Errors
    ///
    /// [`CommunityError::NotLoggedIn`] without a session;
    /// [`CommunityError::GossipDisabled`] when the layer is off.
    pub fn publish_blob(
        &mut self,
        name: &str,
        data: Bytes,
        ctx: &mut AppCtx<'_>,
    ) -> Result<u64, CommunityError> {
        let member = self
            .store
            .active_member()
            .ok_or(CommunityError::NotLoggedIn)?
            .to_owned();
        let Some(rt) = self.gossip.as_mut() else {
            return Err(CommunityError::GossipDisabled);
        };
        ctx.trace_local(&format!("BLOB_PUBLISH {name}"));
        let id = rt.publish_blob(&member, name, data, ctx.now());
        self.flush_gossip(ctx);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Completed-operation access
    // ------------------------------------------------------------------

    /// All completed operations so far.
    pub fn completed_ops(&self) -> &[OpOutcome] {
        &self.completed
    }

    /// The outcome of one operation, if it has completed.
    pub fn outcome(&self, id: OpId) -> Option<&OpOutcome> {
        self.completed.iter().find(|o| o.id == id)
    }

    // ------------------------------------------------------------------
    // User operations (Figures 11–17)
    // ------------------------------------------------------------------

    /// Figure 11: asks every nearby community server for its online member
    /// and displays the list.
    pub fn get_member_list(&mut self, ctx: &mut AppCtx<'_>) -> OpId {
        self.fan_out(ctx, OpKind::MemberList, Request::GetOnlineMemberList)
    }

    /// Figure 12: collects and deduplicates the interests available in the
    /// neighborhood.
    pub fn get_interest_list(&mut self, ctx: &mut AppCtx<'_>) -> OpId {
        self.fan_out(ctx, OpKind::InterestList, Request::GetInterestList)
    }

    /// Asks every nearby community server which of its members hold
    /// `interest`.
    pub fn get_interested_members(&mut self, interest: &str, ctx: &mut AppCtx<'_>) -> OpId {
        self.fan_out(
            ctx,
            OpKind::InterestedMembers,
            Request::GetInterestedMemberList {
                interest: interest.to_owned(),
            },
        )
    }

    /// Figure 13: requests `member`'s profile from every nearby server;
    /// the host answers with the profile (and logs the visit), all others
    /// with `NO_MEMBERS_YET`.
    pub fn view_profile(&mut self, member: &str, ctx: &mut AppCtx<'_>) -> OpId {
        let requester = self.member().unwrap_or_default().to_owned();
        self.fan_out(
            ctx,
            OpKind::ViewProfile,
            Request::GetProfile {
                member: member.to_owned(),
                requester,
            },
        )
    }

    /// Figure 14: sends a profile comment to every nearby server; only the
    /// member's host writes it.
    pub fn put_comment(&mut self, member: &str, comment: &str, ctx: &mut AppCtx<'_>) -> OpId {
        let author = self.member().unwrap_or_default().to_owned();
        self.fan_out(
            ctx,
            OpKind::PutComment,
            Request::AddProfileComment {
                member: member.to_owned(),
                author,
                comment: comment.to_owned(),
            },
        )
    }

    /// Figure 15: requests `member`'s trusted-friends list from every
    /// nearby server.
    pub fn view_trusted_friends(&mut self, member: &str, ctx: &mut AppCtx<'_>) -> OpId {
        self.fan_out(
            ctx,
            OpKind::TrustedFriends,
            Request::GetTrustedFriends {
                member: member.to_owned(),
            },
        )
    }

    /// Figure 16: checks trust with `member`'s device, then (if trusted)
    /// fetches their shared-content listing.
    pub fn view_shared_content(&mut self, member: &str, ctx: &mut AppCtx<'_>) -> OpId {
        let requester = self.member().unwrap_or_default().to_owned();
        let req = Request::CheckTrusted {
            member: member.to_owned(),
            requester,
        };
        self.direct_op(
            ctx,
            OpKind::SharedContent {
                member: member.to_owned(),
            },
            member,
            req,
        )
    }

    /// Figure 17: sends a mail message straight to the device hosting
    /// `to`.
    pub fn send_message(
        &mut self,
        to: &str,
        subject: &str,
        body: &str,
        ctx: &mut AppCtx<'_>,
    ) -> OpId {
        let from = self.member().unwrap_or_default().to_owned();
        let req = Request::Message {
            to: to.to_owned(),
            from,
            subject: subject.to_owned(),
            body: body.to_owned(),
        };
        self.direct_op(ctx, OpKind::SendMessage, to, req)
    }

    /// Fetches the bytes of one shared item from `member` (trusted-only
    /// file transfer).
    pub fn fetch_content(&mut self, member: &str, name: &str, ctx: &mut AppCtx<'_>) -> OpId {
        let requester = self.member().unwrap_or_default().to_owned();
        let req = Request::FetchContent {
            member: member.to_owned(),
            requester,
            name: name.to_owned(),
        };
        self.direct_op(ctx, OpKind::FetchContent, member, req)
    }

    // ------------------------------------------------------------------
    // Operation machinery
    // ------------------------------------------------------------------

    fn alloc_op(&mut self, kind: OpKind, now: SimTime) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(
            id,
            ActiveOp {
                kind,
                started: now,
                outstanding: BTreeMap::new(),
                acc: OpAcc::default(),
                plan: None,
            },
        );
        id
    }

    fn fail_op(&mut self, id: OpId, err: CommunityError, ctx: &mut AppCtx<'_>) {
        if let Some(op) = self.ops.remove(&id) {
            self.completed.push(OpOutcome {
                id,
                started: op.started,
                finished: ctx.now(),
                result: OpResult::Failed(err),
            });
        }
    }

    /// Starts a fan-out operation over all community devices.
    fn fan_out(&mut self, ctx: &mut AppCtx<'_>, kind: OpKind, req: Request) -> OpId {
        let id = self.alloc_op(kind, ctx.now());
        match self.op_mode {
            OpMode::Persistent => {
                let targets: Vec<(DeviceId, ConnId)> = self
                    .peers
                    .iter()
                    .filter_map(|(device, peer)| peer.ready_conn().map(|c| (*device, c)))
                    .collect();
                for (device, conn) in &targets {
                    self.send_on(ctx, *device, *conn, &req, Pending::Op(id));
                    self.ops.get_mut(&id).expect("just created").expect(*conn);
                }
                if targets.is_empty() {
                    self.finalize_if_done(id, ctx);
                }
            }
            OpMode::PerOperation => {
                let devices: VecDeque<DeviceId> = self
                    .peers
                    .iter()
                    .filter(|(_, p)| p.has_service)
                    .map(|(d, _)| *d)
                    .collect();
                self.ops.get_mut(&id).expect("just created").plan = Some(OpPlan {
                    requests: vec![req],
                    remaining: devices,
                    current: None,
                });
                self.begin_plan(id, ctx);
            }
        }
        id
    }

    /// Starts an operation against the single device hosting `member`.
    fn direct_op(
        &mut self,
        ctx: &mut AppCtx<'_>,
        kind: OpKind,
        member: &str,
        req: Request,
    ) -> OpId {
        let id = self.alloc_op(kind, ctx.now());
        let Some(device) = self.device_of_member(member) else {
            self.fail_op(
                id,
                CommunityError::MemberNotConnected(member.to_owned()),
                ctx,
            );
            return id;
        };
        match self.op_mode {
            OpMode::Persistent => match self.peers.get(&device).and_then(Peer::ready_conn) {
                Some(conn) => {
                    self.send_on(ctx, device, conn, &req, Pending::Op(id));
                    self.ops.get_mut(&id).expect("just created").expect(conn);
                }
                None => {
                    self.fail_op(
                        id,
                        CommunityError::MemberNotConnected(member.to_owned()),
                        ctx,
                    );
                }
            },
            OpMode::PerOperation => {
                self.ops.get_mut(&id).expect("just created").plan = Some(OpPlan {
                    requests: vec![req],
                    remaining: VecDeque::from([device]),
                    current: None,
                });
                self.begin_plan(id, ctx);
            }
        }
        id
    }

    /// Starts an operation plan, optionally after the thesis client's
    /// blocking device refresh (one Bluetooth inquiry window).
    fn begin_plan(&mut self, id: OpId, ctx: &mut AppCtx<'_>) {
        if self.fresh_inquiry_per_op {
            let token = OP_START_TIMER_BASE + id.raw();
            self.deferred_ops.insert(token, id);
            ctx.set_timer(netsim::radio::BLUETOOTH.inquiry_duration, token);
        } else {
            self.advance_plan(id, ctx);
        }
    }

    /// Per-operation mode: close the current connection (if any) and move
    /// on to the next device, or finalize.
    fn advance_plan(&mut self, id: OpId, ctx: &mut AppCtx<'_>) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        let Some(plan) = op.plan.as_mut() else {
            return;
        };
        if let Some((_, Some(conn))) = plan.current.take() {
            ctx.peerhood().close(conn);
            self.conn_to_peer.remove(&conn);
            self.conn_pending.remove(&conn);
            self.purge_conn_retries(conn);
        }
        let op = self.ops.get_mut(&id).expect("still present");
        let plan = op.plan.as_mut().expect("still present");
        match plan.remaining.pop_front() {
            Some(device) => {
                plan.current = Some((device, None));
                self.op_connects.entry(device).or_default().push_back(id);
                ctx.peerhood().connect(device, SERVICE_NAME);
            }
            None => {
                plan.current = None;
                self.finalize_if_done(id, ctx);
            }
        }
    }

    fn send_on(
        &mut self,
        ctx: &mut AppCtx<'_>,
        device: DeviceId,
        conn: ConnId,
        req: &Request,
        pending: Pending,
    ) {
        let peer_name = self
            .peers
            .get(&device)
            .map(|p| p.device_name.clone())
            .unwrap_or_else(|| device.to_string());
        ctx.trace(&peer_name, req.label());
        let seq = self.next_req_seq;
        self.next_req_seq += 1;
        // Under fault tolerance, mutating requests go out in an idempotency
        // envelope; reads are naturally idempotent and stay bare.
        let wire_req = match (self.fault_tolerance, req) {
            (Some(_), Request::AddProfileComment { .. } | Request::Message { .. }) => {
                Request::Idempotent {
                    token: client_token_half(ctx.actor()) | seq,
                    inner: Box::new(req.clone()),
                }
            }
            _ => req.clone(),
        };
        ctx.peerhood().send(conn, Bytes::from(wire_req.encode()));
        self.conn_pending
            .entry(conn)
            .or_default()
            .push_back(PendingEntry { seq, what: pending });
        if let Some(policy) = self.fault_tolerance {
            self.retry_timers.insert(
                seq,
                RetryEntry {
                    conn,
                    device,
                    request: wire_req,
                    attempts: 0,
                },
            );
            ctx.set_timer(policy.request_timeout, RETRY_TIMER_BASE + seq);
        }
    }

    /// Drops retry state for every in-flight request on `conn` (the
    /// connection is gone; its timers will fire into the void and be
    /// ignored).
    fn purge_conn_retries(&mut self, conn: ConnId) {
        self.retry_timers.retain(|_, e| e.conn != conn);
    }

    /// A retry deadline fired for request `seq`.
    fn on_retry_timer(&mut self, seq: u64, ctx: &mut AppCtx<'_>) {
        let Some(policy) = self.fault_tolerance else {
            return;
        };
        let Some(entry) = self.retry_timers.get(&seq) else {
            return; // answered (or its connection died) meanwhile
        };
        let conn = entry.conn;
        // Responses come back in FIFO order, so only the *front* request of
        // a connection can actually be overdue; a later request's wait
        // starts when it reaches the front.
        let is_front = self
            .conn_pending
            .get(&conn)
            .and_then(VecDeque::front)
            .is_some_and(|p| p.seq == seq);
        if !is_front {
            ctx.set_timer(policy.request_timeout, RETRY_TIMER_BASE + seq);
            return;
        }
        if entry.attempts < policy.max_retries {
            let entry = self.retry_timers.get_mut(&seq).expect("checked above");
            entry.attempts += 1;
            let (device, frame, label) =
                (entry.device, entry.request.encode(), entry.request.label());
            let peer_name = self
                .peers
                .get(&device)
                .map(|p| p.device_name.clone())
                .unwrap_or_else(|| device.to_string());
            ctx.trace(&peer_name, &format!("(retry) {label}"));
            ctx.peerhood().send(conn, Bytes::from(frame));
            ctx.set_timer(policy.request_timeout, RETRY_TIMER_BASE + seq);
        } else {
            // Retries exhausted: give up on the whole connection. Tearing
            // it down routes through `on_conn_gone`, which resumes any
            // per-operation plan on the next device and finalizes fan-outs.
            self.retry_timers.remove(&seq);
            ctx.peerhood().close(conn);
            self.on_conn_gone(conn, ctx);
        }
    }

    fn device_of_member(&self, member: &str) -> Option<DeviceId> {
        self.peers
            .iter()
            .find_map(|(device, peer)| (peer.member.as_deref() == Some(member)).then_some(*device))
    }

    fn recompute_groups(&mut self, ctx: &mut AppCtx<'_>) {
        let Some(me) = self.store.active_member().map(str::to_owned) else {
            return;
        };
        let own: Vec<Interest> = self
            .store
            .active_account()
            .map(|a| a.profile().interests.to_vec())
            .unwrap_or_default();
        let neighbors: Vec<(String, Vec<Interest>)> = self
            .peers
            .values()
            .filter_map(|p| p.member.clone().map(|m| (m, p.interests.clone())))
            .collect();
        let mut neighbors = neighbors;
        // Members learned through multi-hop gossip count as neighbors for
        // discovery; direct radio knowledge wins when both exist.
        if let Some(rt) = &self.gossip {
            for (member, interests) in rt.remote_members() {
                if *member == me || neighbors.iter().any(|(n, _)| n == member) {
                    continue;
                }
                neighbors.push((member.clone(), interests.clone()));
            }
        }
        let events = Discovery::new(&me, &self.policy).update(&mut self.registry, &own, &neighbors);
        let now = ctx.now();
        for ev in events {
            match &ev {
                GroupEvent::GroupFormed { key, .. } | GroupEvent::GroupDissolved { key } => {
                    ctx.trace_local(&format!("{} {key}", ev.label()));
                }
                GroupEvent::MemberJoined { key, member }
                | GroupEvent::MemberLeft { key, member } => {
                    ctx.trace_local(&format!("{} {key} {member}", ev.label()));
                }
            }
            if let Some(rt) = self.gossip.as_mut() {
                rt.publish_group(&ev, now);
            }
            self.group_events.push((now, ev));
        }
        if self.first_group_at.is_none() && !self.registry.my_groups().is_empty() {
            self.first_group_at = Some(now);
        }
        self.flush_gossip(ctx);
    }

    // ------------------------------------------------------------------
    // Gossip machinery
    // ------------------------------------------------------------------

    /// Brings the gossip layer up (idempotent) and starts its tick timer.
    fn enable_gossip(&mut self, config: GossipConfig, ctx: &mut AppCtx<'_>) {
        if self.gossip.is_some() {
            return;
        }
        let tick = config.tick_interval();
        self.gossip = Some(GossipRuntime::new(ctx.actor(), config));
        ctx.trace_local("GOSSIP_ENABLED");
        ctx.set_timer(tick, GOSSIP_TIMER);
    }

    /// Whether any usable connection (client or server side) to the device
    /// named `name` remains.
    fn has_conn_to(&self, name: &str) -> bool {
        self.peers
            .values()
            .any(|p| p.device_name == name && p.ready_conn().is_some())
            || self.server_conns.values().any(|n| n == name)
    }

    /// A connection to `name` appeared; tell the gossip layer (idempotent).
    fn gossip_link_up(&mut self, name: &str, ctx: &mut AppCtx<'_>) {
        let now = ctx.now();
        if let Some(rt) = self.gossip.as_mut() {
            if rt.link_up(name, now) {
                self.flush_gossip(ctx);
            }
        }
    }

    /// A connection to `name` vanished; if it was the last one, tell the
    /// gossip layer and drop any queued batches for it.
    fn gossip_link_maybe_down(&mut self, name: &str, ctx: &mut AppCtx<'_>) {
        if self.has_conn_to(name) {
            return;
        }
        let now = ctx.now();
        if let Some(rt) = self.gossip.as_mut() {
            if rt.link_down(name, now) {
                self.gossip_queues.remove(name);
                self.flush_gossip(ctx);
            }
        }
    }

    /// Moves the runtime's outbox into the per-destination queues and sends
    /// every queue that has a usable client connection as one `PS_GOSSIP`
    /// batch. Queues without a connection wait — the peer collects them as
    /// a `GOSSIP_REPLY` piggyback the next time it gossips to us.
    fn flush_gossip(&mut self, ctx: &mut AppCtx<'_>) {
        let Some(rt) = self.gossip.as_mut() else {
            return;
        };
        for (dest, msg) in rt.take_outbox() {
            self.gossip_queues.entry(dest).or_default().push(msg);
        }
        let deliverable: Vec<(String, DeviceId, ConnId)> = self
            .peers
            .iter()
            .filter_map(|(device, peer)| {
                // A standing connection if there is one, otherwise any live
                // per-operation client connection to the same device.
                let conn = peer.ready_conn().or_else(|| {
                    self.conn_to_peer
                        .iter()
                        .find_map(|(c, d)| (d == device).then_some(*c))
                })?;
                let queued = self
                    .gossip_queues
                    .get(&peer.device_name)
                    .is_some_and(|q| !q.is_empty());
                queued.then(|| (peer.device_name.clone(), *device, conn))
            })
            .collect();
        for (name, device, conn) in deliverable {
            let Some(msgs) = self.gossip_queues.remove(&name) else {
                continue;
            };
            self.send_on(
                ctx,
                device,
                conn,
                &Request::Gossip { msgs },
                Pending::Gossip,
            );
        }
    }

    /// Feeds an incoming gossip batch from `peer` through the runtime and
    /// reacts to the news it decoded.
    fn on_gossip_batch(
        &mut self,
        peer: &str,
        msgs: Vec<peerhood::gossip::GossipMsg>,
        ctx: &mut AppCtx<'_>,
    ) {
        let Some(rt) = self.gossip.as_mut() else {
            return;
        };
        let news = rt.handle_batch(peer, msgs, ctx.now());
        let mut membership_changed = false;
        for item in news {
            match item {
                GossipNews::Member { member, hops } => {
                    ctx.trace_local(&format!("GOSSIP_MEMBER {member} hops={hops}"));
                    membership_changed = true;
                }
                GossipNews::Group { origin, event, .. } => {
                    // Remote recomputes are notifications only; our own
                    // groups derive from membership, so no registry feedback
                    // (and therefore no event loops).
                    ctx.trace_local(&format!(
                        "GOSSIP {} {} from={origin}",
                        event.label(),
                        event.key()
                    ));
                }
                GossipNews::Blob(delivery) => {
                    ctx.trace_local(&format!(
                        "BLOB_RECV {} hops={}",
                        delivery.name, delivery.hops
                    ));
                }
            }
        }
        if membership_changed {
            self.recompute_groups(ctx);
        }
        self.flush_gossip(ctx);
    }

    /// Server side of `PS_GOSSIP`: absorb the batch, then reply with
    /// whatever is queued for that peer (the piggyback path that lets two
    /// nodes gossip even when only one direction managed to connect).
    fn on_gossip_request(
        &mut self,
        client_name: &str,
        msgs: Vec<peerhood::gossip::GossipMsg>,
        ctx: &mut AppCtx<'_>,
    ) -> Response {
        if self.gossip.is_none() {
            return Response::Gossip(Vec::new());
        }
        self.on_gossip_batch(client_name, msgs, ctx);
        let reply = self.gossip_queues.remove(client_name).unwrap_or_default();
        Response::Gossip(reply)
    }

    /// The gossip housekeeping tick: (re-)announce the local membership,
    /// run graft-retry/shuffle timers, flush, re-arm.
    fn on_gossip_tick(&mut self, ctx: &mut AppCtx<'_>) {
        let Some(rt) = self.gossip.as_mut() else {
            return;
        };
        let now = ctx.now();
        if let Some(member) = self.store.active_member().map(str::to_owned) {
            let interests: Vec<Interest> = self
                .store
                .active_account()
                .map(|a| a.profile().interests.to_vec())
                .unwrap_or_default();
            rt.announce_member(&member, &interests, now);
        }
        rt.on_tick(now);
        let tick = rt.config().tick_interval();
        ctx.set_timer(tick, GOSSIP_TIMER);
        self.flush_gossip(ctx);
    }

    /// Per-operation mode: probe all community devices for member names and
    /// interests with short-lived connections (feeds group discovery).
    fn start_probe(&mut self, ctx: &mut AppCtx<'_>) {
        if self.active_probe.is_some() {
            return;
        }
        let devices: VecDeque<DeviceId> = self
            .peers
            .iter()
            .filter(|(_, p)| p.has_service)
            .map(|(d, _)| *d)
            .collect();
        if devices.is_empty() {
            return;
        }
        let id = self.alloc_op(OpKind::Probe, ctx.now());
        self.active_probe = Some(id);
        self.ops.get_mut(&id).expect("just created").plan = Some(OpPlan {
            requests: vec![Request::GetOnlineMemberList, Request::GetInterestList],
            remaining: devices,
            current: None,
        });
        // The probe is also a "get the list of all nearby devices"
        // operation (Figure 6 step 1): under the thesis-faithful
        // configuration it waits for a full inquiry round first.
        self.begin_plan(id, ctx);
    }

    /// Persistent mode: open the standing connection to a discovered
    /// community device if none exists yet.
    fn connect_if_needed(&mut self, device: DeviceId, ctx: &mut AppCtx<'_>) {
        if self.op_mode != OpMode::Persistent {
            return;
        }
        let Some(peer) = self.peers.get_mut(&device) else {
            return;
        };
        if peer.has_service && peer.conn == ConnState::Disconnected {
            peer.conn = ConnState::Connecting;
            ctx.peerhood().connect(device, SERVICE_NAME);
        }
    }

    /// Routes a response frame arriving on one of our client connections.
    fn on_client_response(&mut self, conn: ConnId, payload: &[u8], ctx: &mut AppCtx<'_>) {
        let Some(&device) = self.conn_to_peer.get(&conn) else {
            return;
        };
        let Ok(resp) = Response::decode(payload) else {
            return; // tolerate garbage from a confused peer
        };
        let pending = self
            .conn_pending
            .get_mut(&conn)
            .and_then(VecDeque::pop_front);
        if let Some(entry) = &pending {
            // Answered: its retry deadline (if any) is void.
            self.retry_timers.remove(&entry.seq);
        }
        let pending = pending.map(|e| e.what);
        let peer_name = self
            .peers
            .get(&device)
            .map(|p| p.device_name.clone())
            .unwrap_or_else(|| device.to_string());
        ctx.trace(&peer_name, &format!("(recv) {}", resp.label()));
        match pending {
            Some(Pending::AutoMemberName) => {
                let changed = {
                    let Some(peer) = self.peers.get_mut(&device) else {
                        return;
                    };
                    let before = peer.member.clone();
                    peer.member = match &resp {
                        Response::MemberList(names) => names.first().cloned(),
                        _ => None,
                    };
                    before != peer.member
                };
                if changed {
                    self.recompute_groups(ctx);
                }
            }
            Some(Pending::AutoInterests) => {
                if let Response::InterestList(items) = &resp {
                    if let Some(peer) = self.peers.get_mut(&device) {
                        peer.interests = items.iter().map(Interest::new).collect();
                    }
                    self.recompute_groups(ctx);
                }
            }
            Some(Pending::Gossip) => {
                if let Response::Gossip(msgs) = resp {
                    if !msgs.is_empty() {
                        self.on_gossip_batch(&peer_name, msgs, ctx);
                    }
                }
            }
            Some(Pending::Op(id)) => {
                self.on_op_response(id, conn, device, resp, ctx);
            }
            None => {}
        }
    }

    fn on_op_response(
        &mut self,
        id: OpId,
        conn: ConnId,
        device: DeviceId,
        resp: Response,
        ctx: &mut AppCtx<'_>,
    ) {
        let Some(op) = self.ops.get_mut(&id) else {
            return;
        };
        if let Some(count) = op.outstanding.get_mut(&conn) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                op.outstanding.remove(&conn);
            }
        }
        let mut follow_up: Option<Request> = None;
        let mut probe_update: Option<ProbeUpdate> = None;
        match (&op.kind, resp) {
            (OpKind::Probe, Response::MemberList(names)) => {
                probe_update = Some(ProbeUpdate::Member(names.first().cloned()));
            }
            (OpKind::Probe, Response::InterestList(items)) => {
                probe_update = Some(ProbeUpdate::Interests(
                    items.iter().map(Interest::new).collect(),
                ));
            }
            (OpKind::Probe, Response::NoMembersYet) => {
                probe_update = Some(ProbeUpdate::Member(None));
            }
            (OpKind::MemberList, Response::MemberList(names)) => {
                op.acc.names.extend(names);
            }
            (OpKind::InterestList, Response::InterestList(items)) => {
                // Figure 12: merge into the stored list, adding only new
                // entries — the dedup happens in the accumulating set.
                op.acc.names.extend(items);
            }
            (OpKind::InterestedMembers, Response::InterestedMembers(names)) => {
                op.acc.names.extend(names);
            }
            (OpKind::ViewProfile, Response::Profile(view)) => {
                op.acc.profile = Some(view);
            }
            (OpKind::PutComment, Response::CommentWritten) => {
                op.acc.written = true;
            }
            (OpKind::TrustedFriends, Response::TrustedFriends(list)) => {
                op.acc.trusted = Some(list);
            }
            (OpKind::SharedContent { member }, Response::Trusted) => {
                // Phase 2 of Figure 16.
                let requester = self.store.active_member().unwrap_or_default().to_owned();
                follow_up = Some(Request::GetSharedContent {
                    member: member.clone(),
                    requester,
                });
            }
            (OpKind::SharedContent { .. }, Response::NotTrustedYet) => {
                op.acc.not_trusted = true;
            }
            (OpKind::SharedContent { .. }, Response::SharedContent(items)) => {
                op.acc.listing = Some(items);
            }
            (OpKind::SendMessage, Response::MessageWritten) => {
                op.acc.written = true;
            }
            (OpKind::SendMessage, Response::MessageFailed) => {
                op.acc.written = false;
            }
            (OpKind::FetchContent, Response::Content { name, data }) => {
                op.acc.content = Some((name, data));
            }
            (OpKind::FetchContent, Response::NotTrustedYet) => {
                op.acc.not_trusted = true;
            }
            // NO_MEMBERS_YET and anything else: contributes nothing.
            _ => {}
        }
        if let Some(update) = probe_update {
            let changed = match (self.peers.get_mut(&device), update) {
                (Some(peer), ProbeUpdate::Member(m)) => {
                    let changed = peer.member != m;
                    peer.member = m;
                    changed
                }
                (Some(peer), ProbeUpdate::Interests(items)) => {
                    let changed = peer.interests != items;
                    peer.interests = items;
                    changed
                }
                (None, _) => false,
            };
            if changed {
                self.recompute_groups(ctx);
            }
        }
        if let Some(req) = follow_up {
            self.send_on(ctx, device, conn, &req, Pending::Op(id));
            if let Some(op) = self.ops.get_mut(&id) {
                op.expect(conn);
            }
        }
        // Plan bookkeeping: once this device's connection has no expected
        // responses left, close it and visit the next device.
        let advance = self.ops.get(&id).is_some_and(|op| {
            op.plan
                .as_ref()
                .is_some_and(|plan| plan.current == Some((device, Some(conn))))
                && !op.outstanding.contains_key(&conn)
        });
        if advance {
            self.advance_plan(id, ctx);
        } else {
            self.finalize_if_done(id, ctx);
        }
    }

    fn finalize_if_done(&mut self, id: OpId, ctx: &mut AppCtx<'_>) {
        let done = self.ops.get(&id).is_some_and(|op| {
            op.outstanding_total() == 0
                && op
                    .plan
                    .as_ref()
                    .is_none_or(|p| p.remaining.is_empty() && p.current.is_none())
        });
        if !done {
            return;
        }
        let op = self.ops.remove(&id).expect("checked");
        if self.active_probe == Some(id) {
            self.active_probe = None;
            return; // probes complete silently
        }
        let result = match op.kind {
            OpKind::Probe => return, // unreachable in practice
            OpKind::MemberList => {
                ctx.trace_local("DISPLAY MEMBER LIST");
                OpResult::Members(op.acc.names.into_iter().collect())
            }
            OpKind::InterestList => {
                ctx.trace_local("DISPLAY INTEREST LIST");
                OpResult::Interests(op.acc.names.into_iter().collect())
            }
            OpKind::InterestedMembers => {
                OpResult::InterestedMembers(op.acc.names.into_iter().collect())
            }
            OpKind::ViewProfile => {
                ctx.trace_local("DISPLAY PROFILE");
                OpResult::Profile(op.acc.profile)
            }
            OpKind::PutComment => OpResult::CommentResult {
                written: op.acc.written,
            },
            OpKind::TrustedFriends => {
                ctx.trace_local("DISPLAY TRUSTED FRIENDS");
                OpResult::TrustedFriends(op.acc.trusted)
            }
            OpKind::SharedContent { .. } => {
                let outcome = if let Some(items) = op.acc.listing {
                    ctx.trace_local("DISPLAY SHARED CONTENT");
                    SharedOutcome::Listing(items)
                } else if op.acc.not_trusted {
                    SharedOutcome::NotTrusted
                } else {
                    SharedOutcome::NoMember
                };
                OpResult::SharedContent(outcome)
            }
            OpKind::SendMessage => OpResult::MessageResult {
                written: op.acc.written,
            },
            OpKind::FetchContent => OpResult::Content(op.acc.content),
        };
        self.completed.push(OpOutcome {
            id,
            started: op.started,
            finished: ctx.now(),
            result,
        });
    }

    /// A connection we depended on vanished; clean up ops and peer state.
    fn on_conn_gone(&mut self, conn: ConnId, ctx: &mut AppCtx<'_>) {
        let server_name = self.server_conns.remove(&conn);
        self.conn_pending.remove(&conn);
        self.purge_conn_retries(conn);
        let mut client_name = None;
        if let Some(device) = self.conn_to_peer.remove(&conn) {
            if let Some(peer) = self.peers.get_mut(&device) {
                // Only a lost *persistent* connection invalidates what we
                // know about the peer; per-operation connections come and
                // go by design.
                if peer.ready_conn() == Some(conn) {
                    client_name = Some(peer.device_name.clone());
                    peer.conn = ConnState::Disconnected;
                    peer.member = None;
                    peer.interests.clear();
                    self.recompute_groups(ctx);
                }
            }
        }
        for name in [server_name, client_name].into_iter().flatten() {
            self.gossip_link_maybe_down(&name, ctx);
        }
        let ids: Vec<OpId> = self.ops.keys().copied().collect();
        for id in ids {
            let mut advance = false;
            if let Some(op) = self.ops.get_mut(&id) {
                op.outstanding.remove(&conn);
                if let Some(plan) = op.plan.as_mut() {
                    if let Some((device, Some(c))) = plan.current {
                        if c == conn {
                            plan.current = Some((device, None));
                            advance = true;
                        }
                    }
                }
            }
            if advance {
                // The device died mid-visit: skip to the next one.
                if let Some(op) = self.ops.get_mut(&id) {
                    if let Some(plan) = op.plan.as_mut() {
                        plan.current = None;
                    }
                }
                self.advance_plan(id, ctx);
            } else {
                self.finalize_if_done(id, ctx);
            }
        }
    }

    /// A connection attempt made on behalf of an operation plan resolved.
    fn on_op_connect_resolved(
        &mut self,
        device: DeviceId,
        conn: Option<ConnId>,
        ctx: &mut AppCtx<'_>,
    ) -> bool {
        let Some(queue) = self.op_connects.get_mut(&device) else {
            return false;
        };
        let Some(id) = queue.pop_front() else {
            return false;
        };
        if queue.is_empty() {
            self.op_connects.remove(&device);
        }
        match conn {
            Some(conn) => {
                self.conn_to_peer.insert(conn, device);
                let requests: Vec<Request> = self
                    .ops
                    .get(&id)
                    .and_then(|op| op.plan.as_ref())
                    .map(|p| p.requests.clone())
                    .unwrap_or_default();
                if requests.is_empty() {
                    // The op finished or vanished meanwhile: just close.
                    ctx.peerhood().close(conn);
                    return true;
                }
                if let Some(op) = self.ops.get_mut(&id) {
                    if let Some(plan) = op.plan.as_mut() {
                        plan.current = Some((device, Some(conn)));
                    }
                }
                for req in &requests {
                    self.send_on(ctx, device, conn, req, Pending::Op(id));
                    if let Some(op) = self.ops.get_mut(&id) {
                        op.expect(conn);
                    }
                }
                // Per-operation connections are a gossip opportunity too:
                // batches pipeline behind the op requests on the same
                // connection and the link drops again when the op closes it.
                if let Some(name) = self.peers.get(&device).map(|p| p.device_name.clone()) {
                    self.gossip_link_up(&name, ctx);
                }
            }
            None => {
                // Connect failed: skip this device.
                if let Some(op) = self.ops.get_mut(&id) {
                    if let Some(plan) = op.plan.as_mut() {
                        plan.current = None;
                    }
                }
                self.advance_plan(id, ctx);
            }
        }
        true
    }
}

#[derive(Debug)]
enum ProbeUpdate {
    Member(Option<String>),
    Interests(Vec<Interest>),
}

impl Application for CommunityApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.started_at = Some(ctx.now());
        // Figure 8: the server registers the PeerHoodCommunity service in
        // the PeerHood Daemon.
        ctx.peerhood()
            .register_service(ServiceInfo::new(SERVICE_NAME).with_attribute("version", "0.2"));
        ctx.set_timer(self.refresh_interval, REFRESH_TIMER);
        if let Some(config) = self.gossip_cfg.take() {
            self.enable_gossip(config, ctx);
        }
    }

    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match event {
            AppEvent::DeviceAppeared(info) => {
                ctx.peerhood().monitor(info.id);
                self.peers
                    .entry(info.id)
                    .or_insert_with(|| Peer::new(info.name.to_string()));
                ctx.peerhood().request_service_list(info.id);
            }
            AppEvent::ServiceList {
                device, services, ..
            } => {
                let has = services.iter().any(|s| s.name() == SERVICE_NAME);
                if let Some(peer) = self.peers.get_mut(&device) {
                    peer.has_service = has;
                }
                if has {
                    match self.op_mode {
                        OpMode::Persistent => self.connect_if_needed(device, ctx),
                        OpMode::PerOperation => self.start_probe(ctx),
                    }
                }
            }
            AppEvent::Connected {
                conn,
                device,
                service,
                ..
            } => {
                if service != SERVICE_NAME {
                    return;
                }
                // Operation-plan connections take precedence.
                if self.on_op_connect_resolved(device, Some(conn), ctx) {
                    return;
                }
                if let Some(peer) = self.peers.get_mut(&device) {
                    let peer_name = peer.device_name.clone();
                    peer.conn = ConnState::Ready(conn);
                    self.conn_to_peer.insert(conn, device);
                    // Automatic probes on the standing connection: who is
                    // logged in there, and what do they like?
                    self.send_on(
                        ctx,
                        device,
                        conn,
                        &Request::GetOnlineMemberList,
                        Pending::AutoMemberName,
                    );
                    self.send_on(
                        ctx,
                        device,
                        conn,
                        &Request::GetInterestList,
                        Pending::AutoInterests,
                    );
                    self.gossip_link_up(&peer_name, ctx);
                }
            }
            AppEvent::ConnectFailed { device, .. } => {
                if self.on_op_connect_resolved(device, None, ctx) {
                    return;
                }
                if let Some(peer) = self.peers.get_mut(&device) {
                    if peer.conn == ConnState::Connecting {
                        peer.conn = ConnState::Disconnected;
                    }
                }
            }
            AppEvent::Incoming {
                conn,
                device,
                service,
                ..
            } if service == SERVICE_NAME => {
                let name = self
                    .peers
                    .get(&device)
                    .map(|p| p.device_name.clone())
                    .unwrap_or_else(|| device.to_string());
                self.server_conns.insert(conn, name.clone());
                self.gossip_link_up(&name, ctx);
            }
            AppEvent::Data { conn, payload } => {
                if let Some(client_name) = self.server_conns.get(&conn).cloned() {
                    // Server side: decode a request, dispatch, respond.
                    let Ok(req) = Request::decode(&payload) else {
                        return;
                    };
                    // Gossip batches never touch the member store: they are
                    // absorbed by the gossip layer and answered with the
                    // piggyback batch queued for this peer.
                    if let Request::Gossip { msgs } = &req {
                        let resp = self.on_gossip_request(&client_name, msgs.clone(), ctx);
                        ctx.trace(&client_name, resp.label());
                        ctx.peerhood().send(conn, Bytes::from(resp.encode()));
                        return;
                    }
                    let resp = handle_request_cached(
                        &mut self.store,
                        &self.policy,
                        &mut self.replay,
                        &req,
                        ctx.now(),
                    );
                    ctx.trace(&client_name, resp.label());
                    ctx.peerhood().send(conn, Bytes::from(resp.encode()));
                } else {
                    self.on_client_response(conn, &payload, ctx);
                }
            }
            AppEvent::Closed { conn, .. } => {
                self.on_conn_gone(conn, ctx);
            }
            AppEvent::DeviceDisappeared(info) => {
                // "If any remote device is unreachable, that remote device
                // is considered as disconnected and removed from all
                // associated interest groups" (§5.1).
                if let Some(peer) = self.peers.remove(&info.id) {
                    if let ConnState::Ready(conn) = peer.conn {
                        self.conn_to_peer.remove(&conn);
                        self.conn_pending.remove(&conn);
                        self.purge_conn_retries(conn);
                        ctx.peerhood().close(conn);
                    }
                    self.gossip_link_maybe_down(&peer.device_name, ctx);
                }
                self.recompute_groups(ctx);
            }
            AppEvent::GossipEnabled { config } => {
                self.enable_gossip(config, ctx);
            }
            AppEvent::Handover { .. }
            | AppEvent::MonitorAlert { .. }
            | AppEvent::DeviceList(_)
            | AppEvent::ServiceRegistration { .. } => {}
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AppCtx<'_>) {
        if token >= RETRY_TIMER_BASE {
            self.on_retry_timer(token - RETRY_TIMER_BASE, ctx);
            return;
        }
        if let Some(id) = self.deferred_ops.remove(&token) {
            self.advance_plan(id, ctx);
            return;
        }
        if token == GOSSIP_TIMER {
            self.on_gossip_tick(ctx);
            return;
        }
        if token != REFRESH_TIMER {
            return;
        }
        match self.op_mode {
            OpMode::Persistent => {
                // Reconnect dropped community peers and refresh
                // member/interest state of connected ones (picks up
                // interest edits on other devices).
                let devices: Vec<DeviceId> = self.peers.keys().copied().collect();
                for device in devices {
                    let (ready, has_service) = match self.peers.get(&device) {
                        Some(p) => (p.ready_conn(), p.has_service),
                        None => continue,
                    };
                    match ready {
                        Some(conn) => {
                            self.send_on(
                                ctx,
                                device,
                                conn,
                                &Request::GetOnlineMemberList,
                                Pending::AutoMemberName,
                            );
                            self.send_on(
                                ctx,
                                device,
                                conn,
                                &Request::GetInterestList,
                                Pending::AutoInterests,
                            );
                        }
                        None if has_service => self.connect_if_needed(device, ctx),
                        None => {
                            // Service list may have been missed; ask again.
                            ctx.peerhood().request_service_list(device);
                        }
                    }
                }
            }
            OpMode::PerOperation => {
                self.start_probe(ctx);
            }
        }
        ctx.set_timer(self.refresh_interval, REFRESH_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn app(name: &str, interests: &[&str]) -> CommunityApp {
        CommunityApp::with_member(
            name,
            "pw",
            Profile::new(name).with_interests(interests.iter().copied()),
        )
    }

    #[test]
    fn with_member_logs_in() {
        let a = app("alice", &["chess"]);
        assert_eq!(a.member(), Some("alice"));
        assert!(a.groups().is_empty());
        assert_eq!(a.op_mode(), OpMode::Persistent);
    }

    #[test]
    fn login_failure_propagates() {
        let mut store = MemberStore::new();
        store
            .create_account("bob", "right", Profile::new("Bob"))
            .unwrap();
        let mut a = CommunityApp::new(store);
        assert_eq!(
            a.login("bob", "wrong"),
            Err(CommunityError::InvalidCredentials)
        );
        assert_eq!(a.member(), None);
        a.login("bob", "right").unwrap();
        assert_eq!(a.member(), Some("bob"));
        a.logout();
        assert_eq!(a.member(), None);
    }

    #[test]
    fn trusted_management_requires_login() {
        let mut a = CommunityApp::new(MemberStore::new());
        assert_eq!(a.add_trusted("x"), Err(CommunityError::NotLoggedIn));
        let mut b = app("bob", &[]);
        b.add_trusted("alice").unwrap();
        assert!(b
            .store()
            .active_account()
            .unwrap()
            .trusted
            .contains("alice"));
        b.remove_trusted("alice").unwrap();
        assert!(!b
            .store()
            .active_account()
            .unwrap()
            .trusted
            .contains("alice"));
    }

    #[test]
    fn op_mode_builder() {
        let a = app("alice", &[]).with_op_mode(OpMode::PerOperation);
        assert_eq!(a.op_mode(), OpMode::PerOperation);
    }

    #[test]
    fn outcome_lookup_finds_completed_ops() {
        let a = app("alice", &[]);
        assert!(a.completed_ops().is_empty());
        assert!(a.outcome(OpId(0)).is_none());
    }
}
