//! The PeerHood Community wire protocol.
//!
//! Table 6 of the thesis lists the client requests (`PS_*` operations) and
//! the server functions answering them; the MSC figures (11–17) add the
//! response vocabulary (`NO_MEMBERS_YET`, `NOT_TRUSTED_YET`,
//! `SUCCESSFULLY_WRITTEN`, `UNSUCCESSFULL`). This module defines those
//! messages as [`Request`] / [`Response`] enums with a compact hand-rolled
//! binary encoding — one encoded message per PeerHood frame, so the
//! simulator charges realistic transfer time for exactly the bytes sent.

use crate::content::ContentInfo;
use crate::error::CommunityError;
use crate::profile::ProfileView;

/// A client request (one `PS_*` operation of Table 6).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// `PS_GETONLINEMEMBERLIST` — who is logged in on this device?
    GetOnlineMemberList,
    /// `PS_GETINTERESTLIST` — the device user's interests.
    GetInterestList,
    /// `PS_GETINTERESTEDMEMBERLIST` — members on this device interested in
    /// `interest`.
    GetInterestedMemberList {
        /// The interest asked about (normalized key or display form).
        interest: String,
    },
    /// `PS_GETPROFILE` — the full profile of `member`, announcing the
    /// `requester` so the server can log the visit (Figure 13).
    GetProfile {
        /// Whose profile is wanted.
        member: String,
        /// Who is asking (written to the visitor log).
        requester: String,
    },
    /// `PS_ADDPROFILECOMMENT` — append `comment` to `member`'s profile
    /// (Figure 14).
    AddProfileComment {
        /// Whose profile to comment on.
        member: String,
        /// The commenting member.
        author: String,
        /// The comment text.
        comment: String,
    },
    /// `PS_CHECKMEMBERID` — does `member` live on this device?
    CheckMemberId {
        /// The member id to check.
        member: String,
    },
    /// `PS_MSG` — deliver a mail message (Figure 17).
    Message {
        /// Receiving member.
        to: String,
        /// Sending member.
        from: String,
        /// Subject line.
        subject: String,
        /// Body text.
        body: String,
    },
    /// `PS_GETSHAREDCONTENT` / `PS_SHAREDCONTENT` — list `member`'s shared
    /// content; trusted requesters only (Figure 16).
    GetSharedContent {
        /// Whose content.
        member: String,
        /// Who is asking (trust is checked against this name).
        requester: String,
    },
    /// `PS_GETTRUSTEDFRIEND` — `member`'s trusted-friends list (Figure 15).
    GetTrustedFriends {
        /// Whose trusted list.
        member: String,
    },
    /// `PS_CHECKTRUSTED` — is `requester` on `member`'s trusted list
    /// (Figure 16, first phase)?
    CheckTrusted {
        /// Whose trust list to consult.
        member: String,
        /// The member asking for trust.
        requester: String,
    },
    /// `PS_FETCHCONTENT` — fetch the bytes of one shared item (trusted
    /// requesters only; the transfer half of the file-sharing feature).
    FetchContent {
        /// Whose content.
        member: String,
        /// Who is asking.
        requester: String,
        /// Item name from a previous listing.
        name: String,
    },
}

impl Request {
    /// The thesis's protocol label for this request (MSC arrow text).
    pub fn label(&self) -> &'static str {
        match self {
            Request::GetOnlineMemberList => "PS_GETONLINEMEMBERLIST",
            Request::GetInterestList => "PS_GETINTERESTLIST",
            Request::GetInterestedMemberList { .. } => "PS_GETINTERESTEDMEMBERLIST",
            Request::GetProfile { .. } => "PS_GETPROFILE",
            Request::AddProfileComment { .. } => "PS_ADDPROFILECOMMENT",
            Request::CheckMemberId { .. } => "PS_CHECKMEMBERID",
            Request::Message { .. } => "PS_MSG",
            Request::GetSharedContent { .. } => "PS_GETSHAREDCONTENT",
            Request::GetTrustedFriends { .. } => "PS_GETTRUSTEDFRIEND",
            Request::CheckTrusted { .. } => "PS_CHECKTRUSTED",
            Request::FetchContent { .. } => "PS_FETCHCONTENT",
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// The member(s) logged in on the answering device.
    MemberList(Vec<String>),
    /// The answering device user's interests (display forms).
    InterestList(Vec<String>),
    /// Members on the answering device with the asked interest.
    InterestedMembers(Vec<String>),
    /// The requested profile (Figure 13's bundle: info, interests, trusted
    /// friends, comments).
    Profile(ProfileView),
    /// `NO_MEMBERS_YET` — the asked member does not live on this device (or
    /// nobody is logged in).
    NoMembersYet,
    /// The profile comment was written.
    CommentWritten,
    /// Answer to `PS_CHECKMEMBERID`.
    CheckMemberResult(bool),
    /// `SUCCESSFULLY_WRITTEN` — the mail message reached the inbox.
    MessageWritten,
    /// `UNSUCCESSFULL` — the mail message could not be written.
    MessageFailed,
    /// The shared-content listing.
    SharedContent(Vec<ContentInfo>),
    /// `NOT_TRUSTED_YET` — the requester is not on the trusted list.
    NotTrustedYet,
    /// The trusted-friends list.
    TrustedFriends(Vec<String>),
    /// `PS_CHECKTRUSTED` succeeded: the requester is trusted.
    Trusted,
    /// The bytes of one shared item.
    Content {
        /// Item name.
        name: String,
        /// Item bytes.
        data: Vec<u8>,
    },
    /// A server-side error description.
    Error(String),
}

impl Response {
    /// The thesis's protocol label for this response (MSC arrow text).
    pub fn label(&self) -> &'static str {
        match self {
            Response::MemberList(_) => "ONLINE_MEMBERS",
            Response::InterestList(_) => "INTEREST_LIST",
            Response::InterestedMembers(_) => "INTERESTED_MEMBERS",
            Response::Profile(_) => "PROFILE_INFO",
            Response::NoMembersYet => "NO_MEMBERS_YET",
            Response::CommentWritten => "COMMENT_WRITTEN",
            Response::CheckMemberResult(_) => "CHECKMEMBERID_RESULT",
            Response::MessageWritten => "SUCCESSFULLY_WRITTEN",
            Response::MessageFailed => "UNSUCCESSFULL",
            Response::SharedContent(_) => "SHARED_CONTENT",
            Response::NotTrustedYet => "NOT_TRUSTED_YET",
            Response::TrustedFriends(_) => "TRUSTED_FRIENDS",
            Response::Trusted => "TRUSTED_OK",
            Response::Content { .. } => "CONTENT",
            Response::Error(_) => "ERROR",
        }
    }
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

/// Opcode constants (requests < 0x80, responses >= 0x80).
mod op {
    pub const GET_ONLINE_MEMBER_LIST: u8 = 0x01;
    pub const GET_INTEREST_LIST: u8 = 0x02;
    pub const GET_INTERESTED_MEMBER_LIST: u8 = 0x03;
    pub const GET_PROFILE: u8 = 0x04;
    pub const ADD_PROFILE_COMMENT: u8 = 0x05;
    pub const CHECK_MEMBER_ID: u8 = 0x06;
    pub const MESSAGE: u8 = 0x07;
    pub const GET_SHARED_CONTENT: u8 = 0x08;
    pub const GET_TRUSTED_FRIENDS: u8 = 0x09;
    pub const CHECK_TRUSTED: u8 = 0x0A;
    pub const FETCH_CONTENT: u8 = 0x0B;

    pub const MEMBER_LIST: u8 = 0x81;
    pub const INTEREST_LIST: u8 = 0x82;
    pub const INTERESTED_MEMBERS: u8 = 0x83;
    pub const PROFILE: u8 = 0x84;
    pub const NO_MEMBERS_YET: u8 = 0x85;
    pub const COMMENT_WRITTEN: u8 = 0x86;
    pub const CHECK_MEMBER_RESULT: u8 = 0x87;
    pub const MESSAGE_WRITTEN: u8 = 0x88;
    pub const MESSAGE_FAILED: u8 = 0x89;
    pub const SHARED_CONTENT: u8 = 0x8A;
    pub const NOT_TRUSTED_YET: u8 = 0x8B;
    pub const TRUSTED_FRIENDS: u8 = 0x8C;
    pub const TRUSTED: u8 = 0x8D;
    pub const CONTENT: u8 = 0x8E;
    pub const ERROR: u8 = 0x8F;
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(opcode: u8) -> Self {
        Writer { buf: vec![opcode] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    fn str_list(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.str(s);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(msg: &str) -> CommunityError {
        CommunityError::Codec(msg.to_owned())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CommunityError> {
        if self.pos + n > self.buf.len() {
            return Err(Self::err("truncated message"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CommunityError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CommunityError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CommunityError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, CommunityError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| Self::err("invalid utf-8"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CommunityError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str_list(&mut self) -> Result<Vec<String>, CommunityError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            // A list cannot have more elements than the message has bytes:
            // reject absurd lengths before allocating.
            return Err(Self::err("list length exceeds message size"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    fn expect_end(&self) -> Result<(), CommunityError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::err("trailing bytes"))
        }
    }
}

impl Request {
    /// Encodes the request as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::GetOnlineMemberList => Writer::new(op::GET_ONLINE_MEMBER_LIST).finish(),
            Request::GetInterestList => Writer::new(op::GET_INTEREST_LIST).finish(),
            Request::GetInterestedMemberList { interest } => {
                let mut w = Writer::new(op::GET_INTERESTED_MEMBER_LIST);
                w.str(interest);
                w.finish()
            }
            Request::GetProfile { member, requester } => {
                let mut w = Writer::new(op::GET_PROFILE);
                w.str(member);
                w.str(requester);
                w.finish()
            }
            Request::AddProfileComment {
                member,
                author,
                comment,
            } => {
                let mut w = Writer::new(op::ADD_PROFILE_COMMENT);
                w.str(member);
                w.str(author);
                w.str(comment);
                w.finish()
            }
            Request::CheckMemberId { member } => {
                let mut w = Writer::new(op::CHECK_MEMBER_ID);
                w.str(member);
                w.finish()
            }
            Request::Message {
                to,
                from,
                subject,
                body,
            } => {
                let mut w = Writer::new(op::MESSAGE);
                w.str(to);
                w.str(from);
                w.str(subject);
                w.str(body);
                w.finish()
            }
            Request::GetSharedContent { member, requester } => {
                let mut w = Writer::new(op::GET_SHARED_CONTENT);
                w.str(member);
                w.str(requester);
                w.finish()
            }
            Request::GetTrustedFriends { member } => {
                let mut w = Writer::new(op::GET_TRUSTED_FRIENDS);
                w.str(member);
                w.finish()
            }
            Request::CheckTrusted { member, requester } => {
                let mut w = Writer::new(op::CHECK_TRUSTED);
                w.str(member);
                w.str(requester);
                w.finish()
            }
            Request::FetchContent {
                member,
                requester,
                name,
            } => {
                let mut w = Writer::new(op::FETCH_CONTENT);
                w.str(member);
                w.str(requester);
                w.str(name);
                w.finish()
            }
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Codec`] on truncation, unknown opcodes,
    /// invalid UTF-8 or trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Request, CommunityError> {
        let mut r = Reader::new(frame);
        let opcode = r.u8()?;
        let req = match opcode {
            op::GET_ONLINE_MEMBER_LIST => Request::GetOnlineMemberList,
            op::GET_INTEREST_LIST => Request::GetInterestList,
            op::GET_INTERESTED_MEMBER_LIST => Request::GetInterestedMemberList {
                interest: r.str()?,
            },
            op::GET_PROFILE => Request::GetProfile {
                member: r.str()?,
                requester: r.str()?,
            },
            op::ADD_PROFILE_COMMENT => Request::AddProfileComment {
                member: r.str()?,
                author: r.str()?,
                comment: r.str()?,
            },
            op::CHECK_MEMBER_ID => Request::CheckMemberId { member: r.str()? },
            op::MESSAGE => Request::Message {
                to: r.str()?,
                from: r.str()?,
                subject: r.str()?,
                body: r.str()?,
            },
            op::GET_SHARED_CONTENT => Request::GetSharedContent {
                member: r.str()?,
                requester: r.str()?,
            },
            op::GET_TRUSTED_FRIENDS => Request::GetTrustedFriends { member: r.str()? },
            op::CHECK_TRUSTED => Request::CheckTrusted {
                member: r.str()?,
                requester: r.str()?,
            },
            op::FETCH_CONTENT => Request::FetchContent {
                member: r.str()?,
                requester: r.str()?,
                name: r.str()?,
            },
            other => return Err(Reader::err(&format!("unknown request opcode {other:#x}"))),
        };
        r.expect_end()?;
        Ok(req)
    }
}

fn encode_profile_view(w: &mut Writer, v: &ProfileView) {
    w.str(&v.member);
    w.str(&v.display_name);
    w.u32(v.fields.len() as u32);
    for (k, val) in &v.fields {
        w.str(k);
        w.str(val);
    }
    w.str_list(&v.interests);
    w.str_list(&v.trusted);
    w.str_list(&v.comments);
}

fn decode_profile_view(r: &mut Reader<'_>) -> Result<ProfileView, CommunityError> {
    let member = r.str()?;
    let display_name = r.str()?;
    let n = r.u32()? as usize;
    let mut fields = std::collections::BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = r.str()?;
        fields.insert(k, v);
    }
    Ok(ProfileView {
        member,
        display_name,
        fields,
        interests: r.str_list()?,
        trusted: r.str_list()?,
        comments: r.str_list()?,
    })
}

impl Response {
    /// Encodes the response as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::MemberList(v) => {
                let mut w = Writer::new(op::MEMBER_LIST);
                w.str_list(v);
                w.finish()
            }
            Response::InterestList(v) => {
                let mut w = Writer::new(op::INTEREST_LIST);
                w.str_list(v);
                w.finish()
            }
            Response::InterestedMembers(v) => {
                let mut w = Writer::new(op::INTERESTED_MEMBERS);
                w.str_list(v);
                w.finish()
            }
            Response::Profile(v) => {
                let mut w = Writer::new(op::PROFILE);
                encode_profile_view(&mut w, v);
                w.finish()
            }
            Response::NoMembersYet => Writer::new(op::NO_MEMBERS_YET).finish(),
            Response::CommentWritten => Writer::new(op::COMMENT_WRITTEN).finish(),
            Response::CheckMemberResult(b) => {
                let mut w = Writer::new(op::CHECK_MEMBER_RESULT);
                w.u8(u8::from(*b));
                w.finish()
            }
            Response::MessageWritten => Writer::new(op::MESSAGE_WRITTEN).finish(),
            Response::MessageFailed => Writer::new(op::MESSAGE_FAILED).finish(),
            Response::SharedContent(items) => {
                let mut w = Writer::new(op::SHARED_CONTENT);
                w.u32(items.len() as u32);
                for c in items {
                    w.str(&c.name);
                    w.u64(c.size);
                    w.str(&c.kind);
                }
                w.finish()
            }
            Response::NotTrustedYet => Writer::new(op::NOT_TRUSTED_YET).finish(),
            Response::TrustedFriends(v) => {
                let mut w = Writer::new(op::TRUSTED_FRIENDS);
                w.str_list(v);
                w.finish()
            }
            Response::Trusted => Writer::new(op::TRUSTED).finish(),
            Response::Content { name, data } => {
                let mut w = Writer::new(op::CONTENT);
                w.str(name);
                w.bytes(data);
                w.finish()
            }
            Response::Error(msg) => {
                let mut w = Writer::new(op::ERROR);
                w.str(msg);
                w.finish()
            }
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Codec`] on truncation, unknown opcodes,
    /// invalid UTF-8 or trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Response, CommunityError> {
        let mut r = Reader::new(frame);
        let opcode = r.u8()?;
        let resp = match opcode {
            op::MEMBER_LIST => Response::MemberList(r.str_list()?),
            op::INTEREST_LIST => Response::InterestList(r.str_list()?),
            op::INTERESTED_MEMBERS => Response::InterestedMembers(r.str_list()?),
            op::PROFILE => Response::Profile(decode_profile_view(&mut r)?),
            op::NO_MEMBERS_YET => Response::NoMembersYet,
            op::COMMENT_WRITTEN => Response::CommentWritten,
            op::CHECK_MEMBER_RESULT => Response::CheckMemberResult(r.u8()? != 0),
            op::MESSAGE_WRITTEN => Response::MessageWritten,
            op::MESSAGE_FAILED => Response::MessageFailed,
            op::SHARED_CONTENT => {
                let n = r.u32()? as usize;
                if n > frame.len() {
                    return Err(Reader::err("list length exceeds message size"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(ContentInfo {
                        name: r.str()?,
                        size: r.u64()?,
                        kind: r.str()?,
                    });
                }
                Response::SharedContent(items)
            }
            op::NOT_TRUSTED_YET => Response::NotTrustedYet,
            op::TRUSTED_FRIENDS => Response::TrustedFriends(r.str_list()?),
            op::TRUSTED => Response::Trusted,
            op::CONTENT => Response::Content {
                name: r.str()?,
                data: r.bytes()?,
            },
            op::ERROR => Response::Error(r.str()?),
            other => return Err(Reader::err(&format!("unknown response opcode {other:#x}"))),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::GetOnlineMemberList,
            Request::GetInterestList,
            Request::GetInterestedMemberList {
                interest: "football".into(),
            },
            Request::GetProfile {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::AddProfileComment {
                member: "bob".into(),
                author: "alice".into(),
                comment: "hello from the bus".into(),
            },
            Request::CheckMemberId {
                member: "bob".into(),
            },
            Request::Message {
                to: "bob".into(),
                from: "alice".into(),
                subject: "hi".into(),
                body: "are you at the pub?".into(),
            },
            Request::GetSharedContent {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::GetTrustedFriends {
                member: "bob".into(),
            },
            Request::CheckTrusted {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::FetchContent {
                member: "bob".into(),
                requester: "alice".into(),
                name: "song.mp3".into(),
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        let mut fields = BTreeMap::new();
        fields.insert("city".to_owned(), "Lappeenranta".to_owned());
        vec![
            Response::MemberList(vec!["bob".into()]),
            Response::InterestList(vec!["Football".into(), "Ice Hockey".into()]),
            Response::InterestedMembers(vec!["bob".into()]),
            Response::Profile(ProfileView {
                member: "bob".into(),
                display_name: "Bob".into(),
                fields,
                interests: vec!["Football".into()],
                trusted: vec!["alice".into()],
                comments: vec!["alice: hi".into()],
            }),
            Response::NoMembersYet,
            Response::CommentWritten,
            Response::CheckMemberResult(true),
            Response::CheckMemberResult(false),
            Response::MessageWritten,
            Response::MessageFailed,
            Response::SharedContent(vec![ContentInfo {
                name: "song.mp3".into(),
                size: 4_200_000,
                kind: "music".into(),
            }]),
            Response::NotTrustedYet,
            Response::TrustedFriends(vec!["alice".into(), "carol".into()]),
            Response::Trusted,
            Response::Content {
                name: "song.mp3".into(),
                data: vec![0, 1, 2, 255],
            },
            Response::Error("boom".into()),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let frame = req.encode();
            assert_eq!(Request::decode(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in all_responses() {
            let frame = resp.encode();
            assert_eq!(Response::decode(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn labels_match_the_thesis_vocabulary() {
        assert_eq!(
            Request::GetOnlineMemberList.label(),
            "PS_GETONLINEMEMBERLIST"
        );
        assert_eq!(Response::NoMembersYet.label(), "NO_MEMBERS_YET");
        assert_eq!(Response::MessageWritten.label(), "SUCCESSFULLY_WRITTEN");
        assert_eq!(Response::MessageFailed.label(), "UNSUCCESSFULL");
        assert_eq!(Response::NotTrustedYet.label(), "NOT_TRUSTED_YET");
    }

    #[test]
    fn truncated_frames_error() {
        for req in all_requests() {
            let mut frame = req.encode();
            if frame.len() > 1 {
                frame.truncate(frame.len() - 1);
                assert!(Request::decode(&frame).is_err(), "{req:?}");
            }
        }
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Request::GetInterestList.encode();
        frame.push(0xAA);
        assert!(Request::decode(&frame).is_err());
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(Request::decode(&[0x7F]).is_err());
        assert!(Response::decode(&[0xFE]).is_err());
        // A response opcode is not a request and vice versa.
        assert!(Request::decode(&Response::NoMembersYet.encode()).is_err());
        assert!(Response::decode(&Request::GetInterestList.encode()).is_err());
    }

    #[test]
    fn absurd_list_length_rejected_without_allocation() {
        // opcode MEMBER_LIST + length u32::MAX.
        let frame = [op::MEMBER_LIST, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(Response::decode(&frame).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        // CheckMemberId with a 2-byte string of invalid UTF-8.
        let frame = [op::CHECK_MEMBER_ID, 0, 0, 0, 2, 0xC3, 0x28];
        assert!(Request::decode(&frame).is_err());
    }

    #[test]
    fn encoded_size_reflects_payload() {
        let small = Response::Content {
            name: "a".into(),
            data: vec![0; 10],
        };
        let big = Response::Content {
            name: "a".into(),
            data: vec![0; 10_000],
        };
        assert!(big.encode().len() > small.encode().len() + 9_000);
    }
}
