//! The PeerHood Community wire protocol.
//!
//! Table 6 of the thesis lists the client requests (`PS_*` operations) and
//! the server functions answering them; the MSC figures (11–17) add the
//! response vocabulary (`NO_MEMBERS_YET`, `NOT_TRUSTED_YET`,
//! `SUCCESSFULLY_WRITTEN`, `UNSUCCESSFULL`). This module defines those
//! messages as [`Request`] / [`Response`] enums encoded through the
//! workspace-wide [`Wire`] trait — one encoded message per PeerHood frame, so
//! the simulator charges realistic transfer time for exactly the bytes sent.
//!
//! # Frame layout
//!
//! Every frame starts with a one-byte protocol version ([`WIRE_VERSION`])
//! followed by a one-byte opcode and the opcode's payload. The version byte
//! is the negotiation point for future protocol evolution: decoders reject
//! frames from a newer protocol with
//! [`DecodeError::UnsupportedVersion`] instead of misparsing them, and the
//! `#[non_exhaustive]` enums leave room to add messages under a bumped
//! version.

use codec::{decode_seq, encode_seq, Bytes, DecodeError, Wire};
use peerhood::gossip::GossipMsg;

use crate::content::ContentInfo;
use crate::error::CommunityError;
use crate::profile::ProfileView;

/// The current protocol version, written as the first byte of every frame.
pub const WIRE_VERSION: u8 = 1;

fn check_version(input: &mut &[u8]) -> Result<(), DecodeError> {
    let found = u8::decode(input)?;
    if found == WIRE_VERSION {
        Ok(())
    } else {
        Err(DecodeError::UnsupportedVersion {
            supported: WIRE_VERSION,
            found,
        })
    }
}

/// A client request (one `PS_*` operation of Table 6).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// `PS_GETONLINEMEMBERLIST` — who is logged in on this device?
    GetOnlineMemberList,
    /// `PS_GETINTERESTLIST` — the device user's interests.
    GetInterestList,
    /// `PS_GETINTERESTEDMEMBERLIST` — members on this device interested in
    /// `interest`.
    GetInterestedMemberList {
        /// The interest asked about (normalized key or display form).
        interest: String,
    },
    /// `PS_GETPROFILE` — the full profile of `member`, announcing the
    /// `requester` so the server can log the visit (Figure 13).
    GetProfile {
        /// Whose profile is wanted.
        member: String,
        /// Who is asking (written to the visitor log).
        requester: String,
    },
    /// `PS_ADDPROFILECOMMENT` — append `comment` to `member`'s profile
    /// (Figure 14).
    AddProfileComment {
        /// Whose profile to comment on.
        member: String,
        /// The commenting member.
        author: String,
        /// The comment text.
        comment: String,
    },
    /// `PS_CHECKMEMBERID` — does `member` live on this device?
    CheckMemberId {
        /// The member id to check.
        member: String,
    },
    /// `PS_MSG` — deliver a mail message (Figure 17).
    Message {
        /// Receiving member.
        to: String,
        /// Sending member.
        from: String,
        /// Subject line.
        subject: String,
        /// Body text.
        body: String,
    },
    /// `PS_GETSHAREDCONTENT` / `PS_SHAREDCONTENT` — list `member`'s shared
    /// content; trusted requesters only (Figure 16).
    GetSharedContent {
        /// Whose content.
        member: String,
        /// Who is asking (trust is checked against this name).
        requester: String,
    },
    /// `PS_GETTRUSTEDFRIEND` — `member`'s trusted-friends list (Figure 15).
    GetTrustedFriends {
        /// Whose trusted list.
        member: String,
    },
    /// `PS_CHECKTRUSTED` — is `requester` on `member`'s trusted list
    /// (Figure 16, first phase)?
    CheckTrusted {
        /// Whose trust list to consult.
        member: String,
        /// The member asking for trust.
        requester: String,
    },
    /// `PS_FETCHCONTENT` — fetch the bytes of one shared item (trusted
    /// requesters only; the transfer half of the file-sharing feature).
    FetchContent {
        /// Whose content.
        member: String,
        /// Who is asking.
        requester: String,
        /// Item name from a previous listing.
        name: String,
    },
    /// An idempotency envelope around a mutating request.
    ///
    /// A client that may retry after a timeout wraps the mutating request
    /// (comment, message) in this envelope with a `token` unique per logical
    /// operation. The server remembers the response per token (a bounded
    /// replay cache), so a retried request is applied **at most once** and
    /// the original response is replayed. The envelope must not nest: an
    /// `Idempotent` inner request is rejected at decode time.
    Idempotent {
        /// Client-chosen token, unique per logical operation (high half:
        /// requesting device id, low half: per-client sequence number).
        token: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
    /// `PS_GOSSIP` — a batch of epidemic gossip messages (membership
    /// shuffles plus eager/lazy broadcast traffic) piggybacked on the
    /// community protocol. The answering side returns its own batch in
    /// [`Response::Gossip`], so gossip always flows as client request →
    /// server response and never as an unsolicited push.
    Gossip {
        /// The batched gossip messages; the sender is the connection's
        /// client side.
        msgs: Vec<GossipMsg>,
    },
}

impl Request {
    /// The thesis's protocol label for this request (MSC arrow text).
    pub fn label(&self) -> &'static str {
        match self {
            Request::GetOnlineMemberList => "PS_GETONLINEMEMBERLIST",
            Request::GetInterestList => "PS_GETINTERESTLIST",
            Request::GetInterestedMemberList { .. } => "PS_GETINTERESTEDMEMBERLIST",
            Request::GetProfile { .. } => "PS_GETPROFILE",
            Request::AddProfileComment { .. } => "PS_ADDPROFILECOMMENT",
            Request::CheckMemberId { .. } => "PS_CHECKMEMBERID",
            Request::Message { .. } => "PS_MSG",
            Request::GetSharedContent { .. } => "PS_GETSHAREDCONTENT",
            Request::GetTrustedFriends { .. } => "PS_GETTRUSTEDFRIEND",
            Request::CheckTrusted { .. } => "PS_CHECKTRUSTED",
            Request::FetchContent { .. } => "PS_FETCHCONTENT",
            // The envelope is transparent in traces: show the wrapped op.
            Request::Idempotent { inner, .. } => inner.label(),
            Request::Gossip { .. } => "PS_GOSSIP",
        }
    }

    /// Whether serving this request changes server-side state — the test a
    /// persistence journal uses to decide what must be replayed.
    ///
    /// Note that `GetProfile` *is* a mutation: the thesis's Figure 13 flow
    /// writes the requester into the profile's visitor log.
    pub fn is_mutation(&self) -> bool {
        match self {
            Request::AddProfileComment { .. }
            | Request::Message { .. }
            | Request::GetProfile { .. } => true,
            Request::Idempotent { inner, .. } => inner.is_mutation(),
            _ => false,
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// The member(s) logged in on the answering device.
    MemberList(Vec<String>),
    /// The answering device user's interests (display forms).
    InterestList(Vec<String>),
    /// Members on the answering device with the asked interest.
    InterestedMembers(Vec<String>),
    /// The requested profile (Figure 13's bundle: info, interests, trusted
    /// friends, comments).
    Profile(ProfileView),
    /// `NO_MEMBERS_YET` — the asked member does not live on this device (or
    /// nobody is logged in).
    NoMembersYet,
    /// The profile comment was written.
    CommentWritten,
    /// Answer to `PS_CHECKMEMBERID`.
    CheckMemberResult(bool),
    /// `SUCCESSFULLY_WRITTEN` — the mail message reached the inbox.
    MessageWritten,
    /// `UNSUCCESSFULL` — the mail message could not be written.
    MessageFailed,
    /// The shared-content listing.
    SharedContent(Vec<ContentInfo>),
    /// `NOT_TRUSTED_YET` — the requester is not on the trusted list.
    NotTrustedYet,
    /// The trusted-friends list.
    TrustedFriends(Vec<String>),
    /// `PS_CHECKTRUSTED` succeeded: the requester is trusted.
    Trusted,
    /// The bytes of one shared item.
    Content {
        /// Item name.
        name: String,
        /// Item bytes — a shared buffer, so building this response from the
        /// content store does not copy the payload.
        data: Bytes,
    },
    /// A server-side error description.
    Error(String),
    /// The gossip batch answering a [`Request::Gossip`] (possibly empty
    /// when the receiver has nothing queued for the requesting peer).
    Gossip(Vec<GossipMsg>),
}

impl Response {
    /// The thesis's protocol label for this response (MSC arrow text).
    pub fn label(&self) -> &'static str {
        match self {
            Response::MemberList(_) => "ONLINE_MEMBERS",
            Response::InterestList(_) => "INTEREST_LIST",
            Response::InterestedMembers(_) => "INTERESTED_MEMBERS",
            Response::Profile(_) => "PROFILE_INFO",
            Response::NoMembersYet => "NO_MEMBERS_YET",
            Response::CommentWritten => "COMMENT_WRITTEN",
            Response::CheckMemberResult(_) => "CHECKMEMBERID_RESULT",
            Response::MessageWritten => "SUCCESSFULLY_WRITTEN",
            Response::MessageFailed => "UNSUCCESSFULL",
            Response::SharedContent(_) => "SHARED_CONTENT",
            Response::NotTrustedYet => "NOT_TRUSTED_YET",
            Response::TrustedFriends(_) => "TRUSTED_FRIENDS",
            Response::Trusted => "TRUSTED_OK",
            Response::Content { .. } => "CONTENT",
            Response::Error(_) => "ERROR",
            Response::Gossip(_) => "GOSSIP_REPLY",
        }
    }
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

/// Opcode constants (requests < 0x80, responses >= 0x80).
mod op {
    pub const GET_ONLINE_MEMBER_LIST: u8 = 0x01;
    pub const GET_INTEREST_LIST: u8 = 0x02;
    pub const GET_INTERESTED_MEMBER_LIST: u8 = 0x03;
    pub const GET_PROFILE: u8 = 0x04;
    pub const ADD_PROFILE_COMMENT: u8 = 0x05;
    pub const CHECK_MEMBER_ID: u8 = 0x06;
    pub const MESSAGE: u8 = 0x07;
    pub const GET_SHARED_CONTENT: u8 = 0x08;
    pub const GET_TRUSTED_FRIENDS: u8 = 0x09;
    pub const CHECK_TRUSTED: u8 = 0x0A;
    pub const FETCH_CONTENT: u8 = 0x0B;
    pub const IDEMPOTENT: u8 = 0x0C;
    pub const GOSSIP: u8 = 0x0D;

    pub const MEMBER_LIST: u8 = 0x81;
    pub const INTEREST_LIST: u8 = 0x82;
    pub const INTERESTED_MEMBERS: u8 = 0x83;
    pub const PROFILE: u8 = 0x84;
    pub const NO_MEMBERS_YET: u8 = 0x85;
    pub const COMMENT_WRITTEN: u8 = 0x86;
    pub const CHECK_MEMBER_RESULT: u8 = 0x87;
    pub const MESSAGE_WRITTEN: u8 = 0x88;
    pub const MESSAGE_FAILED: u8 = 0x89;
    pub const SHARED_CONTENT: u8 = 0x8A;
    pub const NOT_TRUSTED_YET: u8 = 0x8B;
    pub const TRUSTED_FRIENDS: u8 = 0x8C;
    pub const TRUSTED: u8 = 0x8D;
    pub const CONTENT: u8 = 0x8E;
    pub const ERROR: u8 = 0x8F;
    pub const GOSSIP_REPLY: u8 = 0x90;
}

impl Wire for Request {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(WIRE_VERSION);
        match self {
            Request::GetOnlineMemberList => out.push(op::GET_ONLINE_MEMBER_LIST),
            Request::GetInterestList => out.push(op::GET_INTEREST_LIST),
            Request::GetInterestedMemberList { interest } => {
                out.push(op::GET_INTERESTED_MEMBER_LIST);
                interest.encode_to(out);
            }
            Request::GetProfile { member, requester } => {
                out.push(op::GET_PROFILE);
                member.encode_to(out);
                requester.encode_to(out);
            }
            Request::AddProfileComment {
                member,
                author,
                comment,
            } => {
                out.push(op::ADD_PROFILE_COMMENT);
                member.encode_to(out);
                author.encode_to(out);
                comment.encode_to(out);
            }
            Request::CheckMemberId { member } => {
                out.push(op::CHECK_MEMBER_ID);
                member.encode_to(out);
            }
            Request::Message {
                to,
                from,
                subject,
                body,
            } => {
                out.push(op::MESSAGE);
                to.encode_to(out);
                from.encode_to(out);
                subject.encode_to(out);
                body.encode_to(out);
            }
            Request::GetSharedContent { member, requester } => {
                out.push(op::GET_SHARED_CONTENT);
                member.encode_to(out);
                requester.encode_to(out);
            }
            Request::GetTrustedFriends { member } => {
                out.push(op::GET_TRUSTED_FRIENDS);
                member.encode_to(out);
            }
            Request::CheckTrusted { member, requester } => {
                out.push(op::CHECK_TRUSTED);
                member.encode_to(out);
                requester.encode_to(out);
            }
            Request::FetchContent {
                member,
                requester,
                name,
            } => {
                out.push(op::FETCH_CONTENT);
                member.encode_to(out);
                requester.encode_to(out);
                name.encode_to(out);
            }
            Request::Idempotent { token, inner } => {
                out.push(op::IDEMPOTENT);
                token.encode_to(out);
                // The inner request is a complete frame of its own
                // (version byte included), so it stays decodable by the
                // same code path that handles bare requests.
                inner.encode_to(out);
            }
            Request::Gossip { msgs } => {
                out.push(op::GOSSIP);
                encode_seq(msgs, out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        check_version(input)?;
        let opcode = u8::decode(input)?;
        let req = match opcode {
            op::GET_ONLINE_MEMBER_LIST => Request::GetOnlineMemberList,
            op::GET_INTEREST_LIST => Request::GetInterestList,
            op::GET_INTERESTED_MEMBER_LIST => Request::GetInterestedMemberList {
                interest: String::decode(input)?,
            },
            op::GET_PROFILE => Request::GetProfile {
                member: String::decode(input)?,
                requester: String::decode(input)?,
            },
            op::ADD_PROFILE_COMMENT => Request::AddProfileComment {
                member: String::decode(input)?,
                author: String::decode(input)?,
                comment: String::decode(input)?,
            },
            op::CHECK_MEMBER_ID => Request::CheckMemberId {
                member: String::decode(input)?,
            },
            op::MESSAGE => Request::Message {
                to: String::decode(input)?,
                from: String::decode(input)?,
                subject: String::decode(input)?,
                body: String::decode(input)?,
            },
            op::GET_SHARED_CONTENT => Request::GetSharedContent {
                member: String::decode(input)?,
                requester: String::decode(input)?,
            },
            op::GET_TRUSTED_FRIENDS => Request::GetTrustedFriends {
                member: String::decode(input)?,
            },
            op::CHECK_TRUSTED => Request::CheckTrusted {
                member: String::decode(input)?,
                requester: String::decode(input)?,
            },
            op::FETCH_CONTENT => Request::FetchContent {
                member: String::decode(input)?,
                requester: String::decode(input)?,
                name: String::decode(input)?,
            },
            op::IDEMPOTENT => {
                let token = u64::decode(input)?;
                let inner = <Request as Wire>::decode(input)?;
                if matches!(inner, Request::Idempotent { .. }) {
                    return Err(DecodeError::BadTag {
                        what: "nested idempotent request",
                        tag: op::IDEMPOTENT,
                    });
                }
                Request::Idempotent {
                    token,
                    inner: Box::new(inner),
                }
            }
            op::GOSSIP => Request::Gossip {
                msgs: decode_seq::<GossipMsg>(input)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "request opcode",
                    tag,
                })
            }
        };
        Ok(req)
    }
}

impl Request {
    /// Decodes a request frame (version byte + opcode + payload).
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Decode`] on truncation, unsupported
    /// versions, unknown opcodes, invalid UTF-8 or trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Request, CommunityError> {
        <Request as Wire>::decode_exact(frame).map_err(CommunityError::Decode)
    }

    /// Encodes the request as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        Wire::encode(self)
    }
}

impl Wire for Response {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(WIRE_VERSION);
        match self {
            Response::MemberList(v) => {
                out.push(op::MEMBER_LIST);
                v.encode_to(out);
            }
            Response::InterestList(v) => {
                out.push(op::INTEREST_LIST);
                v.encode_to(out);
            }
            Response::InterestedMembers(v) => {
                out.push(op::INTERESTED_MEMBERS);
                v.encode_to(out);
            }
            Response::Profile(v) => {
                out.push(op::PROFILE);
                v.encode_to(out);
            }
            Response::NoMembersYet => out.push(op::NO_MEMBERS_YET),
            Response::CommentWritten => out.push(op::COMMENT_WRITTEN),
            Response::CheckMemberResult(b) => {
                out.push(op::CHECK_MEMBER_RESULT);
                b.encode_to(out);
            }
            Response::MessageWritten => out.push(op::MESSAGE_WRITTEN),
            Response::MessageFailed => out.push(op::MESSAGE_FAILED),
            Response::SharedContent(items) => {
                out.push(op::SHARED_CONTENT);
                encode_seq(items, out);
            }
            Response::NotTrustedYet => out.push(op::NOT_TRUSTED_YET),
            Response::TrustedFriends(v) => {
                out.push(op::TRUSTED_FRIENDS);
                v.encode_to(out);
            }
            Response::Trusted => out.push(op::TRUSTED),
            Response::Content { name, data } => {
                out.push(op::CONTENT);
                name.encode_to(out);
                data.encode_to(out);
            }
            Response::Error(msg) => {
                out.push(op::ERROR);
                msg.encode_to(out);
            }
            Response::Gossip(msgs) => {
                out.push(op::GOSSIP_REPLY);
                encode_seq(msgs, out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        check_version(input)?;
        let opcode = u8::decode(input)?;
        let resp = match opcode {
            op::MEMBER_LIST => Response::MemberList(Vec::<String>::decode(input)?),
            op::INTEREST_LIST => Response::InterestList(Vec::<String>::decode(input)?),
            op::INTERESTED_MEMBERS => Response::InterestedMembers(Vec::<String>::decode(input)?),
            op::PROFILE => Response::Profile(ProfileView::decode(input)?),
            op::NO_MEMBERS_YET => Response::NoMembersYet,
            op::COMMENT_WRITTEN => Response::CommentWritten,
            op::CHECK_MEMBER_RESULT => Response::CheckMemberResult(bool::decode(input)?),
            op::MESSAGE_WRITTEN => Response::MessageWritten,
            op::MESSAGE_FAILED => Response::MessageFailed,
            op::SHARED_CONTENT => Response::SharedContent(decode_seq::<ContentInfo>(input)?),
            op::NOT_TRUSTED_YET => Response::NotTrustedYet,
            op::TRUSTED_FRIENDS => Response::TrustedFriends(Vec::<String>::decode(input)?),
            op::TRUSTED => Response::Trusted,
            op::CONTENT => Response::Content {
                name: String::decode(input)?,
                data: Bytes::decode(input)?,
            },
            op::ERROR => Response::Error(String::decode(input)?),
            op::GOSSIP_REPLY => Response::Gossip(decode_seq::<GossipMsg>(input)?),
            tag => {
                return Err(DecodeError::BadTag {
                    what: "response opcode",
                    tag,
                })
            }
        };
        Ok(resp)
    }
}

impl Response {
    /// Decodes a response frame (version byte + opcode + payload).
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Decode`] on truncation, unsupported
    /// versions, unknown opcodes, invalid UTF-8 or trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Response, CommunityError> {
        <Response as Wire>::decode_exact(frame).map_err(CommunityError::Decode)
    }

    /// Encodes the response as one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        Wire::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    pub(crate) fn all_requests() -> Vec<Request> {
        vec![
            Request::GetOnlineMemberList,
            Request::GetInterestList,
            Request::GetInterestedMemberList {
                interest: "football".into(),
            },
            Request::GetProfile {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::AddProfileComment {
                member: "bob".into(),
                author: "alice".into(),
                comment: "hello from the bus".into(),
            },
            Request::CheckMemberId {
                member: "bob".into(),
            },
            Request::Message {
                to: "bob".into(),
                from: "alice".into(),
                subject: "hi".into(),
                body: "are you at the pub?".into(),
            },
            Request::GetSharedContent {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::GetTrustedFriends {
                member: "bob".into(),
            },
            Request::CheckTrusted {
                member: "bob".into(),
                requester: "alice".into(),
            },
            Request::FetchContent {
                member: "bob".into(),
                requester: "alice".into(),
                name: "song.mp3".into(),
            },
            Request::Idempotent {
                token: (7u64 << 32) | 42,
                inner: Box::new(Request::AddProfileComment {
                    member: "bob".into(),
                    author: "alice".into(),
                    comment: "hello again".into(),
                }),
            },
            Request::Gossip {
                msgs: vec![
                    GossipMsg::Push {
                        id: 0xfeed,
                        hops: 2,
                        payload: vec![1, 2, 3].into(),
                    },
                    GossipMsg::IHave { ids: vec![1, 2] },
                    GossipMsg::Graft { id: 0xfeed },
                    GossipMsg::Prune,
                    GossipMsg::Shuffle {
                        peers: vec!["bob-phone".into()],
                    },
                    GossipMsg::ShuffleReply {
                        peers: vec!["carol-pda".into()],
                    },
                ],
            },
        ]
    }

    pub(crate) fn all_responses() -> Vec<Response> {
        let mut fields = BTreeMap::new();
        fields.insert("city".to_owned(), "Lappeenranta".to_owned());
        vec![
            Response::MemberList(vec!["bob".into()]),
            Response::InterestList(vec!["Football".into(), "Ice Hockey".into()]),
            Response::InterestedMembers(vec!["bob".into()]),
            Response::Profile(ProfileView {
                member: "bob".into(),
                display_name: "Bob".into(),
                fields,
                interests: vec!["Football".into()],
                trusted: vec!["alice".into()],
                comments: vec!["alice: hi".into()],
            }),
            Response::NoMembersYet,
            Response::CommentWritten,
            Response::CheckMemberResult(true),
            Response::CheckMemberResult(false),
            Response::MessageWritten,
            Response::MessageFailed,
            Response::SharedContent(vec![ContentInfo {
                name: "song.mp3".into(),
                size: 4_200_000,
                kind: "music".into(),
            }]),
            Response::NotTrustedYet,
            Response::TrustedFriends(vec!["alice".into(), "carol".into()]),
            Response::Trusted,
            Response::Content {
                name: "song.mp3".into(),
                data: vec![0, 1, 2, 255].into(),
            },
            Response::Error("boom".into()),
            Response::Gossip(vec![GossipMsg::IHave { ids: vec![0xfeed] }]),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let frame = req.encode();
            assert_eq!(frame[0], WIRE_VERSION, "{req:?}");
            assert_eq!(Request::decode(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in all_responses() {
            let frame = resp.encode();
            assert_eq!(frame[0], WIRE_VERSION, "{resp:?}");
            assert_eq!(Response::decode(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn labels_match_the_thesis_vocabulary() {
        assert_eq!(
            Request::GetOnlineMemberList.label(),
            "PS_GETONLINEMEMBERLIST"
        );
        assert_eq!(Response::NoMembersYet.label(), "NO_MEMBERS_YET");
        assert_eq!(Response::MessageWritten.label(), "SUCCESSFULLY_WRITTEN");
        assert_eq!(Response::MessageFailed.label(), "UNSUCCESSFULL");
        assert_eq!(Response::NotTrustedYet.label(), "NOT_TRUSTED_YET");
    }

    #[test]
    fn truncated_frames_error() {
        for req in all_requests() {
            let mut frame = req.encode();
            if frame.len() > 2 {
                frame.truncate(frame.len() - 1);
                assert!(Request::decode(&frame).is_err(), "{req:?}");
            }
        }
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
        // Just a version byte, no opcode.
        assert!(Request::decode(&[WIRE_VERSION]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Request::GetInterestList.encode();
        frame.push(0xAA);
        assert_eq!(
            Request::decode(&frame),
            Err(CommunityError::Decode(DecodeError::TrailingBytes {
                remaining: 1
            }))
        );
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(Request::decode(&[WIRE_VERSION, 0x7F]).is_err());
        assert!(Response::decode(&[WIRE_VERSION, 0xFE]).is_err());
        // A response opcode is not a request and vice versa.
        assert!(Request::decode(&Response::NoMembersYet.encode()).is_err());
        assert!(Response::decode(&Request::GetInterestList.encode()).is_err());
    }

    #[test]
    fn future_versions_rejected_up_front() {
        let mut frame = Request::GetInterestList.encode();
        frame[0] = WIRE_VERSION + 1;
        assert_eq!(
            Request::decode(&frame),
            Err(CommunityError::Decode(DecodeError::UnsupportedVersion {
                supported: WIRE_VERSION,
                found: WIRE_VERSION + 1,
            }))
        );
        let mut frame = Response::Trusted.encode();
        frame[0] = 0;
        assert!(matches!(
            Response::decode(&frame),
            Err(CommunityError::Decode(DecodeError::UnsupportedVersion {
                found: 0,
                ..
            }))
        ));
    }

    #[test]
    fn absurd_list_length_rejected_without_allocation() {
        // version + opcode MEMBER_LIST + length u32::MAX.
        let frame = [WIRE_VERSION, op::MEMBER_LIST, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(Response::decode(&frame).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        // CheckMemberId with a 2-byte string of invalid UTF-8.
        let frame = [WIRE_VERSION, op::CHECK_MEMBER_ID, 0, 0, 0, 2, 0xC3, 0x28];
        assert_eq!(
            Request::decode(&frame),
            Err(CommunityError::Decode(DecodeError::InvalidUtf8))
        );
    }

    #[test]
    fn idempotent_envelope_is_transparent_in_labels() {
        let req = Request::Idempotent {
            token: 1,
            inner: Box::new(Request::Message {
                to: "bob".into(),
                from: "alice".into(),
                subject: "hi".into(),
                body: "retry me".into(),
            }),
        };
        assert_eq!(req.label(), "PS_MSG");
    }

    #[test]
    fn nested_idempotent_rejected() {
        let inner = Request::Idempotent {
            token: 2,
            inner: Box::new(Request::GetInterestList),
        };
        let nested = Request::Idempotent {
            token: 1,
            inner: Box::new(inner),
        };
        // Encoding is mechanical; the decoder is where nesting is refused.
        assert!(Request::decode(&nested.encode()).is_err());
    }

    #[test]
    fn encoded_size_reflects_payload() {
        let small = Response::Content {
            name: "a".into(),
            data: vec![0; 10].into(),
        };
        let big = Response::Content {
            name: "a".into(),
            data: vec![0; 10_000].into(),
        };
        assert!(big.encode().len() > small.encode().len() + 9_000);
    }
}
