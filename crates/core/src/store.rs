//! The per-device member store: accounts, login, and all local user data.
//!
//! Everything a PeerHood Community device knows lives on the device itself —
//! there is no central database. A [`MemberStore`] holds local accounts
//! (username + password), and per account: one or more [`Profile`]s, the
//! mailbox, the trusted-friends list and the shared content. The server
//! serves the *logged-in* account's data; when nobody is logged in it
//! answers `NO_MEMBERS_YET`.

use codec::{decode_seq, encode_seq, read_len, DecodeError, Wire};
use std::collections::{BTreeMap, BTreeSet};

use crate::content::ContentStore;
use crate::error::CommunityError;
use crate::intern::NamePool;
use crate::message::Mailbox;
use crate::profile::{Profile, ProfileView};

/// One local account.
#[derive(Clone, Debug, PartialEq)]
pub struct Account {
    username: String,
    /// Deliberately simple credential check: this reproduces a 2008 research
    /// prototype, not a hardened auth system.
    password: String,
    profiles: Vec<Profile>,
    active_profile: usize,
    /// Trusted friends by member name.
    pub trusted: BTreeSet<String>,
    /// The account's mailbox.
    pub mailbox: Mailbox,
    /// The account's shared content.
    pub shared: ContentStore,
}

impl Account {
    /// The login name (the member's unique id in the neighborhood).
    pub fn username(&self) -> &str {
        &self.username
    }

    /// The currently selected profile.
    pub fn profile(&self) -> &Profile {
        &self.profiles[self.active_profile]
    }

    /// Mutable access to the currently selected profile.
    pub fn profile_mut(&mut self) -> &mut Profile {
        &mut self.profiles[self.active_profile]
    }

    /// All profiles (Table 7: *Support for Multiple Profiles*).
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Adds another profile and returns its index.
    pub fn add_profile(&mut self, profile: Profile) -> usize {
        self.profiles.push(profile);
        self.profiles.len() - 1
    }

    /// Switches the active profile.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NoSuchProfile`] for an out-of-range index.
    pub fn select_profile(&mut self, index: usize) -> Result<(), CommunityError> {
        if index >= self.profiles.len() {
            return Err(CommunityError::NoSuchProfile(index));
        }
        self.active_profile = index;
        Ok(())
    }

    /// Index of the active profile.
    pub fn active_profile_index(&self) -> usize {
        self.active_profile
    }

    /// The wire view of this account's public data (what `PS_GETPROFILE`
    /// returns).
    pub fn profile_view(&self) -> ProfileView {
        let p = self.profile();
        ProfileView {
            member: self.username.clone(),
            display_name: p.display_name.clone(),
            fields: p.fields.clone(),
            interests: p.interests.iter().map(|i| i.display().to_owned()).collect(),
            trusted: self.trusted.iter().cloned().collect(),
            comments: p.comments.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// All accounts on one device, plus the login session.
#[derive(Clone, Debug, Default)]
pub struct MemberStore {
    accounts: BTreeMap<String, Account>,
    active: Option<String>,
    /// Interned member names for the dispatch hot path. A cache, not data:
    /// excluded from equality and from snapshots, rebuilt lazily.
    names: NamePool,
}

impl PartialEq for MemberStore {
    fn eq(&self, other: &Self) -> bool {
        self.accounts == other.accounts && self.active == other.active
    }
}

impl MemberStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemberStore::default()
    }

    /// Creates an account with an initial profile.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::AccountExists`] for a duplicate username.
    pub fn create_account(
        &mut self,
        username: impl Into<String>,
        password: impl Into<String>,
        profile: Profile,
    ) -> Result<(), CommunityError> {
        let username = username.into();
        if self.accounts.contains_key(&username) {
            return Err(CommunityError::AccountExists(username));
        }
        self.accounts.insert(
            username.clone(),
            Account {
                username,
                password: password.into(),
                profiles: vec![profile],
                active_profile: 0,
                trusted: BTreeSet::new(),
                mailbox: Mailbox::new(),
                shared: ContentStore::new(),
            },
        );
        Ok(())
    }

    /// Logs a user in.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::InvalidCredentials`] when the username is
    /// unknown or the password does not match.
    pub fn login(&mut self, username: &str, password: &str) -> Result<(), CommunityError> {
        match self.accounts.get(username) {
            Some(acc) if acc.password == password => {
                self.active = Some(username.to_owned());
                Ok(())
            }
            _ => Err(CommunityError::InvalidCredentials),
        }
    }

    /// Logs the current user out.
    pub fn logout(&mut self) {
        self.active = None;
    }

    /// The logged-in username, if any.
    pub fn active_member(&self) -> Option<&str> {
        self.active.as_deref()
    }

    /// The logged-in account.
    pub fn active_account(&self) -> Option<&Account> {
        self.active.as_deref().and_then(|u| self.accounts.get(u))
    }

    /// Mutable access to the logged-in account.
    pub fn active_account_mut(&mut self) -> Option<&mut Account> {
        let user = self.active.clone()?;
        self.accounts.get_mut(&user)
    }

    /// Mutable access to the logged-in account, as an error-typed result.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::NotLoggedIn`] when nobody is logged in.
    pub fn require_active(&mut self) -> Result<&mut Account, CommunityError> {
        self.active_account_mut().ok_or(CommunityError::NotLoggedIn)
    }

    /// Returns the shared handle for a member name, allocating only the
    /// first time the name is seen (server dispatch hot path).
    pub fn intern_name(&mut self, name: &str) -> std::sync::Arc<str> {
        self.names.intern(name)
    }

    /// Looks up an account by username (local administration).
    pub fn account(&self, username: &str) -> Option<&Account> {
        self.accounts.get(username)
    }

    /// Number of accounts on this device.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Serializes the whole store to its binary snapshot form
    /// (profile/message persistence).
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        self.encode_to(&mut out);
        out
    }

    /// Restores a store from a snapshot written by
    /// [`MemberStore::to_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Decode`] on malformed input, including a
    /// missing or wrong magic header.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, CommunityError> {
        let mut input = bytes;
        let magic =
            codec::take(&mut input, SNAPSHOT_MAGIC.len()).map_err(CommunityError::Decode)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CommunityError::Decode(DecodeError::BadTag {
                what: "store snapshot magic",
                tag: magic[0],
            }));
        }
        MemberStore::decode_exact(input).map_err(CommunityError::Decode)
    }

    /// Persists the store to a file — "user's registration and all other
    /// essential information" live on the PTD itself, surviving restarts.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_snapshot())
    }

    /// Restores a store from a file written by [`MemberStore::save_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::Persistence`] when the file is unreadable
    /// and [`CommunityError::Decode`] when its contents are malformed.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Self, CommunityError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CommunityError::Persistence(format!("cannot read store file: {e}")))?;
        Self::from_snapshot(&bytes)
    }
}

/// File-format marker: "PHCS" (PeerHood Community Store) + format byte.
const SNAPSHOT_MAGIC: &[u8; 5] = b"PHCS\x01";

impl Wire for Account {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.username.encode_to(out);
        self.password.encode_to(out);
        encode_seq(&self.profiles, out);
        (self.active_profile as u64).encode_to(out);
        self.trusted.encode_to(out);
        self.mailbox.encode_to(out);
        self.shared.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let username = String::decode(input)?;
        let password = String::decode(input)?;
        let profiles: Vec<Profile> = decode_seq(input)?;
        let active_profile = u64::decode(input)? as usize;
        // A snapshot whose active index points past its profile list would
        // make `Account::profile` panic; reject it here instead.
        if active_profile >= profiles.len() {
            return Err(DecodeError::LengthOverflow {
                claimed: active_profile,
                available: profiles.len(),
            });
        }
        Ok(Account {
            username,
            password,
            profiles,
            active_profile,
            trusted: BTreeSet::decode(input)?,
            mailbox: Mailbox::decode(input)?,
            shared: ContentStore::decode(input)?,
        })
    }
}

impl Wire for MemberStore {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.accounts.len() as u32).encode_to(out);
        for account in self.accounts.values() {
            account.encode_to(out);
        }
        self.active.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let mut accounts = BTreeMap::new();
        for _ in 0..n {
            let account = Account::decode(input)?;
            accounts.insert(account.username.clone(), account);
        }
        let active = Option::<String>::decode(input)?;
        // The login session must reference an account that exists.
        if let Some(name) = &active {
            if !accounts.contains_key(name) {
                return Err(DecodeError::BadTag {
                    what: "active member without account",
                    tag: 0,
                });
            }
        }
        Ok(MemberStore {
            accounts,
            active,
            names: NamePool::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_bob() -> MemberStore {
        let mut s = MemberStore::new();
        s.create_account(
            "bob",
            "pw",
            Profile::new("Bob").with_interests(["football"]),
        )
        .unwrap();
        s
    }

    #[test]
    fn create_login_logout() {
        let mut s = store_with_bob();
        assert_eq!(s.active_member(), None);
        assert_eq!(
            s.login("bob", "wrong"),
            Err(CommunityError::InvalidCredentials)
        );
        assert_eq!(
            s.login("nobody", "pw"),
            Err(CommunityError::InvalidCredentials)
        );
        s.login("bob", "pw").unwrap();
        assert_eq!(s.active_member(), Some("bob"));
        s.logout();
        assert_eq!(s.active_member(), None);
        assert_eq!(s.require_active().unwrap_err(), CommunityError::NotLoggedIn);
    }

    #[test]
    fn duplicate_account_rejected() {
        let mut s = store_with_bob();
        assert_eq!(
            s.create_account("bob", "x", Profile::new("B2")),
            Err(CommunityError::AccountExists("bob".into()))
        );
        assert_eq!(s.account_count(), 1);
    }

    #[test]
    fn multiple_profiles_switch() {
        let mut s = store_with_bob();
        s.login("bob", "pw").unwrap();
        let acc = s.require_active().unwrap();
        assert_eq!(acc.profile().display_name, "Bob");
        let idx = acc.add_profile(Profile::new("Work Bob").with_interests(["databases"]));
        acc.select_profile(idx).unwrap();
        assert_eq!(acc.profile().display_name, "Work Bob");
        assert_eq!(acc.active_profile_index(), 1);
        assert_eq!(acc.profiles().len(), 2);
        assert_eq!(acc.select_profile(9), Err(CommunityError::NoSuchProfile(9)));
    }

    #[test]
    fn profile_view_reflects_account() {
        let mut s = store_with_bob();
        s.login("bob", "pw").unwrap();
        let acc = s.require_active().unwrap();
        acc.trusted.insert("alice".into());
        acc.profile_mut()
            .add_comment("carol", "nice profile", netsim::SimTime::from_secs(1));
        let view = s.active_account().unwrap().profile_view();
        assert_eq!(view.member, "bob");
        assert_eq!(view.interests, vec!["football"]);
        assert_eq!(view.trusted, vec!["alice"]);
        assert_eq!(view.comments, vec!["carol: nice profile"]);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = store_with_bob();
        s.login("bob", "pw").unwrap();
        s.require_active()
            .unwrap()
            .shared
            .share("f", "file", vec![1]);
        let bytes = s.to_snapshot();
        let back = MemberStore::from_snapshot(&bytes).unwrap();
        assert_eq!(s, back);
        assert!(MemberStore::from_snapshot(b"{bad").is_err());
        assert!(MemberStore::from_snapshot(&[]).is_err());
        // Corrupting the payload is reported, not panicked on.
        let truncated = &bytes[..bytes.len() - 1];
        assert!(MemberStore::from_snapshot(truncated).is_err());
    }

    #[test]
    fn file_persistence_round_trip() {
        let mut s = store_with_bob();
        s.login("bob", "pw").unwrap();
        s.require_active()
            .unwrap()
            .mailbox
            .deliver(crate::message::MailMessage {
                from: "alice".into(),
                to: "bob".into(),
                subject: "s".into(),
                body: "b".into(),
                at: netsim::SimTime::from_secs(1),
            });
        let path = std::env::temp_dir().join("ph-community-store-test.json");
        s.save_to(&path).unwrap();
        let back = MemberStore::load_from(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
        assert!(MemberStore::load_from("/definitely/not/a/path").is_err());
    }

    #[test]
    fn two_accounts_one_device() {
        let mut s = store_with_bob();
        s.create_account("ann", "pw2", Profile::new("Ann")).unwrap();
        s.login("ann", "pw2").unwrap();
        assert_eq!(s.active_member(), Some("ann"));
        s.login("bob", "pw").unwrap();
        assert_eq!(s.active_member(), Some("bob"));
    }

    #[test]
    fn request_against_vanished_account_answers_error_frame_not_panic() {
        // Regression for the `panic-in-dispatch` lint: fabricate the
        // inconsistency the dispatch must survive — a login session naming
        // an account the store no longer holds. Only this module can build
        // it, because the fields are private and the public API keeps
        // `active` and `accounts` in sync.
        use crate::protocol::{Request, Response};
        use crate::semantics::MatchPolicy;
        use crate::server::{handle_request, try_handle_request};

        let mut s = MemberStore::new();
        s.active = Some("ghost".into());
        assert!(s.active_account().is_none());

        let now = netsim::SimTime::from_secs(1);
        assert_eq!(
            try_handle_request(&mut s, &MatchPolicy::Exact, &Request::GetInterestList, now),
            Err(CommunityError::NoActiveAccount)
        );
        // Every account-touching Table 6 row (aimed straight at the ghost
        // session, so the account lookup is actually reached) must fold the
        // inconsistency into a wire frame, never a panic.
        let aimed = [
            Request::GetInterestList,
            Request::GetInterestedMemberList {
                interest: "football".into(),
            },
            Request::GetProfile {
                member: "ghost".into(),
                requester: "alice".into(),
            },
            Request::AddProfileComment {
                member: "ghost".into(),
                author: "alice".into(),
                comment: "hi".into(),
            },
            Request::Message {
                to: "ghost".into(),
                from: "alice".into(),
                subject: "s".into(),
                body: "b".into(),
            },
            Request::GetSharedContent {
                member: "ghost".into(),
                requester: "alice".into(),
            },
            Request::GetTrustedFriends {
                member: "ghost".into(),
            },
            Request::CheckTrusted {
                member: "ghost".into(),
                requester: "alice".into(),
            },
            Request::FetchContent {
                member: "ghost".into(),
                requester: "alice".into(),
                name: "song.mp3".into(),
            },
        ];
        for req in aimed {
            assert_eq!(
                handle_request(&mut s, &MatchPolicy::Exact, &req, now),
                Response::NoMembersYet,
                "request {} must answer the error frame",
                req.label()
            );
        }
    }
}
