//! The group registry: dynamic groups plus manual join/leave.
//!
//! [`GroupRegistry`] holds the current [`GroupSet`] produced by
//! [`crate::discovery::Discovery`] and layers the thesis's manual
//! controls on top (Table 7: *Join/Leave Manually*): the local user can
//! join a group their interests would not put them in, or leave one they
//! were auto-placed into. It also diffs consecutive group sets into
//! [`GroupEvent`]s so applications can show "you joined the Football group"
//! style notifications.

use std::collections::BTreeSet;

use codec::{DecodeError, Wire};

use crate::discovery::{Group, GroupSet};

/// A change between two consecutive group computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupEvent {
    /// A group exists that did not before.
    GroupFormed {
        /// The group key.
        key: String,
        /// Members at formation.
        members: Vec<String>,
    },
    /// A group dissolved (no shared members remain in range).
    GroupDissolved {
        /// The group key.
        key: String,
    },
    /// A member entered an existing group.
    MemberJoined {
        /// The group key.
        key: String,
        /// The member who joined.
        member: String,
    },
    /// A member left an existing group.
    MemberLeft {
        /// The group key.
        key: String,
        /// The member who left.
        member: String,
    },
}

impl GroupEvent {
    /// The trace label for this event, shared by local recomputes and
    /// gossip-delivered group news (one trace vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            GroupEvent::GroupFormed { .. } => "GROUP_FORMED",
            GroupEvent::GroupDissolved { .. } => "GROUP_DISSOLVED",
            GroupEvent::MemberJoined { .. } => "MEMBER_JOINED",
            GroupEvent::MemberLeft { .. } => "MEMBER_LEFT",
        }
    }

    /// The key of the group the event concerns.
    pub fn key(&self) -> &str {
        match self {
            GroupEvent::GroupFormed { key, .. }
            | GroupEvent::GroupDissolved { key }
            | GroupEvent::MemberJoined { key, .. }
            | GroupEvent::MemberLeft { key, .. } => key,
        }
    }
}

// Group events travel inside gossip payloads
// ([`crate::epidemic::GossipContent::Group`]), so they need a stable wire
// form of their own.
impl Wire for GroupEvent {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            GroupEvent::GroupFormed { key, members } => {
                out.push(1);
                key.encode_to(out);
                members.encode_to(out);
            }
            GroupEvent::GroupDissolved { key } => {
                out.push(2);
                key.encode_to(out);
            }
            GroupEvent::MemberJoined { key, member } => {
                out.push(3);
                key.encode_to(out);
                member.encode_to(out);
            }
            GroupEvent::MemberLeft { key, member } => {
                out.push(4);
                key.encode_to(out);
                member.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            1 => Ok(GroupEvent::GroupFormed {
                key: String::decode(input)?,
                members: Vec::<String>::decode(input)?,
            }),
            2 => Ok(GroupEvent::GroupDissolved {
                key: String::decode(input)?,
            }),
            3 => Ok(GroupEvent::MemberJoined {
                key: String::decode(input)?,
                member: String::decode(input)?,
            }),
            4 => Ok(GroupEvent::MemberLeft {
                key: String::decode(input)?,
                member: String::decode(input)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "GroupEvent",
                tag,
            }),
        }
    }
}

/// The local view of all interest groups.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupRegistry {
    /// Latest auto-discovered groups.
    auto: GroupSet,
    /// Group keys the local user manually joined.
    manual_joins: BTreeSet<String>,
    /// Group keys the local user manually left (overrides auto-membership
    /// of the local user, but the group itself remains visible).
    manual_leaves: BTreeSet<String>,
    /// The local user's name (inserted into manually joined groups).
    me: String,
}

impl GroupRegistry {
    /// Creates a registry for the local user `me`.
    pub fn new(me: impl Into<String>) -> Self {
        GroupRegistry {
            me: me.into(),
            ..GroupRegistry::default()
        }
    }

    /// Replaces the auto-discovered groups with a fresh computation and
    /// returns the events describing what changed (based on the *effective*
    /// view).
    pub fn update(&mut self, fresh: GroupSet) -> Vec<GroupEvent> {
        let before = self.effective();
        self.auto = fresh;
        // Drop manual joins for groups that no longer exist at all.
        let auto = &self.auto;
        self.manual_joins.retain(|k| auto.contains_key(k));
        let after = self.effective();
        diff(&before, &after)
    }

    /// The effective groups: auto groups with manual join/leave applied to
    /// the local user's membership.
    pub fn effective(&self) -> GroupSet {
        let mut out = GroupSet::new();
        for (key, group) in &self.auto {
            let mut g = group.clone();
            if self.manual_leaves.contains(key) {
                g.members.retain(|m| *m != self.me);
            }
            if self.manual_joins.contains(key) && !g.contains(&self.me) {
                g.members.push(self.me.clone());
                g.members.sort();
            }
            // A group with fewer than two members is not a social group.
            if g.members.len() >= 2 {
                out.insert(key.clone(), g);
            }
        }
        out
    }

    /// All effective groups, in key order.
    pub fn groups(&self) -> Vec<Group> {
        self.effective().into_values().collect()
    }

    /// One effective group by key.
    pub fn group(&self, key: &str) -> Option<Group> {
        self.effective().remove(key)
    }

    /// Groups the local user is currently a member of.
    pub fn my_groups(&self) -> Vec<Group> {
        self.groups()
            .into_iter()
            .filter(|g| g.contains(&self.me))
            .collect()
    }

    /// Manually joins a visible group (Table 7). Returns whether the key
    /// names a known group.
    pub fn join(&mut self, key: &str) -> bool {
        if !self.auto.contains_key(key) {
            return false;
        }
        self.manual_leaves.remove(key);
        self.manual_joins.insert(key.to_owned());
        true
    }

    /// Manually leaves a group. Returns whether the key names a known
    /// group.
    pub fn leave(&mut self, key: &str) -> bool {
        if !self.auto.contains_key(key) {
            return false;
        }
        self.manual_joins.remove(key);
        self.manual_leaves.insert(key.to_owned());
        true
    }

    /// Number of effective groups.
    pub fn len(&self) -> usize {
        self.effective().len()
    }

    /// Whether no groups are visible.
    pub fn is_empty(&self) -> bool {
        self.effective().is_empty()
    }
}

fn diff(before: &GroupSet, after: &GroupSet) -> Vec<GroupEvent> {
    let mut events = Vec::new();
    for (key, group) in after {
        match before.get(key) {
            None => events.push(GroupEvent::GroupFormed {
                key: key.clone(),
                members: group.members.clone(),
            }),
            Some(old) => {
                let old_set: BTreeSet<&String> = old.members.iter().collect();
                let new_set: BTreeSet<&String> = group.members.iter().collect();
                for member in new_set.difference(&old_set) {
                    events.push(GroupEvent::MemberJoined {
                        key: key.clone(),
                        member: (*member).clone(),
                    });
                }
                for member in old_set.difference(&new_set) {
                    events.push(GroupEvent::MemberLeft {
                        key: key.clone(),
                        member: (*member).clone(),
                    });
                }
            }
        }
    }
    for key in before.keys() {
        if !after.contains_key(key) {
            events.push(GroupEvent::GroupDissolved { key: key.clone() });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(groups: &[(&str, &[&str])]) -> GroupSet {
        groups
            .iter()
            .map(|(key, members)| {
                (
                    (*key).to_owned(),
                    Group {
                        key: (*key).to_owned(),
                        label: (*key).to_owned(),
                        members: members.iter().map(|m| (*m).to_owned()).collect(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn group_event_wire_round_trips_every_variant() {
        let events = [
            GroupEvent::GroupFormed {
                key: "football".into(),
                members: vec!["bob".into(), "me".into()],
            },
            GroupEvent::GroupDissolved {
                key: "chess".into(),
            },
            GroupEvent::MemberJoined {
                key: "sauna".into(),
                member: "carol".into(),
            },
            GroupEvent::MemberLeft {
                key: "poker".into(),
                member: "dave".into(),
            },
        ];
        for event in &events {
            let bytes = event.encode();
            let back = GroupEvent::decode_exact(&bytes).expect("round trip");
            assert_eq!(&back, event);
        }
        assert!(matches!(
            GroupEvent::decode_exact(&[9]),
            Err(DecodeError::BadTag {
                what: "GroupEvent",
                tag: 9
            })
        ));
    }

    #[test]
    fn update_reports_formation_and_dissolution() {
        let mut reg = GroupRegistry::new("me");
        let events = reg.update(set(&[("football", &["bob", "me"])]));
        assert_eq!(
            events,
            vec![GroupEvent::GroupFormed {
                key: "football".into(),
                members: vec!["bob".into(), "me".into()]
            }]
        );
        let events = reg.update(GroupSet::new());
        assert_eq!(
            events,
            vec![GroupEvent::GroupDissolved {
                key: "football".into()
            }]
        );
        assert!(reg.is_empty());
    }

    #[test]
    fn update_reports_member_churn() {
        let mut reg = GroupRegistry::new("me");
        reg.update(set(&[("chess", &["bob", "me"])]));
        let events = reg.update(set(&[("chess", &["carol", "me"])]));
        assert!(events.contains(&GroupEvent::MemberJoined {
            key: "chess".into(),
            member: "carol".into()
        }));
        assert!(events.contains(&GroupEvent::MemberLeft {
            key: "chess".into(),
            member: "bob".into()
        }));
    }

    #[test]
    fn manual_leave_removes_only_me() {
        let mut reg = GroupRegistry::new("me");
        reg.update(set(&[("sauna", &["bob", "carol", "me"])]));
        assert!(reg.leave("sauna"));
        let g = reg.group("sauna").expect("group still visible");
        assert!(!g.contains("me"));
        assert!(g.contains("bob"));
        assert!(reg.my_groups().is_empty());
    }

    #[test]
    fn manual_join_adds_me_to_foreign_group() {
        let mut reg = GroupRegistry::new("me");
        // A group formed around others' interests that I can still see —
        // model: auto set computed by a neighbor includes me-less group.
        reg.update(set(&[("poker", &["bob", "carol"])]));
        assert!(!reg.group("poker").unwrap().contains("me"));
        assert!(reg.join("poker"));
        assert!(reg.group("poker").unwrap().contains("me"));
        assert_eq!(reg.my_groups().len(), 1);
        // Unknown key cannot be joined.
        assert!(!reg.join("nonexistent"));
    }

    #[test]
    fn leaving_then_rejoining_round_trips() {
        let mut reg = GroupRegistry::new("me");
        reg.update(set(&[("x", &["bob", "me"])]));
        reg.leave("x");
        assert!(reg.my_groups().is_empty());
        reg.join("x");
        assert_eq!(reg.my_groups().len(), 1);
    }

    #[test]
    fn single_member_groups_are_hidden() {
        let mut reg = GroupRegistry::new("me");
        reg.update(set(&[("solo", &["me"])]));
        assert!(reg.is_empty(), "a one-person group is not a group");
    }

    #[test]
    fn manual_join_survives_update_while_group_exists() {
        let mut reg = GroupRegistry::new("me");
        reg.update(set(&[("poker", &["bob", "carol"])]));
        reg.join("poker");
        reg.update(set(&[("poker", &["bob", "carol", "dave"])]));
        assert!(reg.group("poker").unwrap().contains("me"));
        // When the group disappears entirely, the manual join is forgotten.
        reg.update(GroupSet::new());
        reg.update(set(&[("poker", &["bob", "carol"])]));
        assert!(!reg.group("poker").unwrap().contains("me"));
    }
}
