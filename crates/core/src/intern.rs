//! Member-name interning for the server dispatch hot path.
//!
//! In a dense neighborhood the same requester names arrive with every
//! `PS_GETPROFILE` / `PS_ADDPROFILECOMMENT` / `PS_MSG` request, and each one
//! used to allocate a fresh `String` into the visitor log, comment list or
//! mailbox. A [`NamePool`] hands out `Arc<str>` handles instead: the first
//! occurrence of a name allocates once, every later occurrence is an O(1)
//! refcount bump that shares the same bytes.

use std::collections::BTreeSet;
use std::sync::Arc;

/// A deduplicating pool of member names.
///
/// The pool is a cache, not data: two stores with different pools but equal
/// member data are equal, and the pool is rebuilt lazily after a snapshot
/// load (it is deliberately not serialized).
#[derive(Clone, Debug, Default)]
pub struct NamePool {
    names: BTreeSet<Arc<str>>,
}

impl NamePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        NamePool::default()
    }

    /// Returns the shared handle for `name`, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(existing) = self.names.get(name) {
            return Arc::clone(existing);
        }
        let shared: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&shared));
        shared
    }

    /// Number of distinct names interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_interns_share_one_allocation() {
        let mut pool = NamePool::new();
        let a = pool.intern("alice");
        let b = pool.intern("alice");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_names_stay_distinct() {
        let mut pool = NamePool::new();
        let a = pool.intern("alice");
        let b = pool.intern("bob");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "alice");
        assert_eq!(&*b, "bob");
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert!(NamePool::new().is_empty());
    }
}
