//! Error types for the PeerHood Community middleware.

use codec::DecodeError;
use peerhood::ErrorKind;
use std::error::Error as StdError;
use std::fmt;

/// Errors reported by the PeerHood Community layer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommunityError {
    /// Login failed: unknown username or wrong password.
    InvalidCredentials,
    /// The operation requires a logged-in user.
    NotLoggedIn,
    /// An account with this username already exists.
    AccountExists(String),
    /// No account with this username exists.
    NoSuchAccount(String),
    /// The referenced profile index does not exist.
    NoSuchProfile(usize),
    /// A wire message could not be decoded.
    Decode(DecodeError),
    /// A persisted member store could not be read or written.
    Persistence(String),
    /// The operation requires an active (logged-in) account, but none was
    /// found in the store — the session state is inconsistent.
    NoActiveAccount,
    /// The referenced member is not currently reachable in the
    /// neighborhood.
    MemberNotConnected(String),
    /// An operation was attempted with no connected members at all.
    NoConnectedMembers,
    /// The operation needs the gossip layer, which is not enabled on this
    /// node (see `DaemonConfig::with_gossip`).
    GossipDisabled,
}

impl CommunityError {
    /// The coarse [`ErrorKind`] of this error — the same classification
    /// (and stable wire codes) the middleware uses for
    /// [`peerhood::PeerHoodError`], so tools can log and transmit failures
    /// from both layers through one vocabulary.
    pub fn kind(&self) -> ErrorKind {
        match self {
            CommunityError::InvalidCredentials | CommunityError::NotLoggedIn => {
                ErrorKind::Unauthorized
            }
            CommunityError::AccountExists(_) => ErrorKind::Conflict,
            CommunityError::NoSuchAccount(_) | CommunityError::NoSuchProfile(_) => {
                ErrorKind::NotFound
            }
            CommunityError::Decode(_) => ErrorKind::InvalidRequest,
            CommunityError::Persistence(_) | CommunityError::NoActiveAccount => ErrorKind::Internal,
            CommunityError::MemberNotConnected(_) => ErrorKind::Unreachable,
            CommunityError::NoConnectedMembers | CommunityError::GossipDisabled => {
                ErrorKind::Unavailable
            }
        }
    }
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::InvalidCredentials => write!(f, "invalid username or password"),
            CommunityError::NotLoggedIn => write!(f, "no user is logged in"),
            CommunityError::AccountExists(u) => write!(f, "account {u:?} already exists"),
            CommunityError::NoSuchAccount(u) => write!(f, "no account named {u:?}"),
            CommunityError::NoSuchProfile(i) => write!(f, "no profile at index {i}"),
            CommunityError::Decode(e) => write!(f, "malformed wire message: {e}"),
            CommunityError::Persistence(m) => write!(f, "store persistence failed: {m}"),
            CommunityError::NoActiveAccount => {
                write!(f, "no active account despite a live session")
            }
            CommunityError::MemberNotConnected(m) => {
                write!(f, "member {m:?} is not connected")
            }
            CommunityError::NoConnectedMembers => write!(f, "no members are connected"),
            CommunityError::GossipDisabled => {
                write!(f, "the gossip layer is not enabled on this node")
            }
        }
    }
}

impl StdError for CommunityError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CommunityError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for CommunityError {
    fn from(e: DecodeError) -> Self {
        CommunityError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CommunityError::AccountExists("bob".into())
            .to_string()
            .contains("bob"));
        assert!(CommunityError::Decode(DecodeError::Truncated)
            .to_string()
            .contains("truncated"));
        assert!(CommunityError::Persistence("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
    }

    #[test]
    fn kinds_match_the_shared_vocabulary() {
        assert_eq!(
            CommunityError::InvalidCredentials.kind(),
            ErrorKind::Unauthorized
        );
        assert_eq!(
            CommunityError::AccountExists("bob".into()).kind(),
            ErrorKind::Conflict
        );
        assert_eq!(
            CommunityError::NoSuchAccount("bob".into()).kind(),
            ErrorKind::NotFound
        );
        assert_eq!(
            CommunityError::Decode(DecodeError::Truncated).kind(),
            ErrorKind::InvalidRequest
        );
        assert_eq!(
            CommunityError::MemberNotConnected("bob".into()).kind(),
            ErrorKind::Unreachable
        );
        assert_eq!(
            CommunityError::NoConnectedMembers.kind(),
            ErrorKind::Unavailable
        );
        // Both layers agree on the wire code for, say, unreachability.
        assert_eq!(CommunityError::NoConnectedMembers.kind().code(), 9);
    }

    #[test]
    fn implements_std_error() {
        fn takes(_: &dyn StdError) {}
        takes(&CommunityError::NotLoggedIn);
        // Decode errors expose the underlying codec error as their source.
        let err = CommunityError::from(DecodeError::Truncated);
        assert!(err.source().is_some());
    }
}
