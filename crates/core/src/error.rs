//! Error types for the PeerHood Community middleware.

use std::error::Error as StdError;
use std::fmt;

/// Errors reported by the PeerHood Community layer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommunityError {
    /// Login failed: unknown username or wrong password.
    InvalidCredentials,
    /// The operation requires a logged-in user.
    NotLoggedIn,
    /// An account with this username already exists.
    AccountExists(String),
    /// No account with this username exists.
    NoSuchAccount(String),
    /// The referenced profile index does not exist.
    NoSuchProfile(usize),
    /// A wire message could not be decoded.
    Codec(String),
    /// The referenced member is not currently reachable in the
    /// neighborhood.
    MemberNotConnected(String),
    /// An operation was attempted with no connected members at all.
    NoConnectedMembers,
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::InvalidCredentials => write!(f, "invalid username or password"),
            CommunityError::NotLoggedIn => write!(f, "no user is logged in"),
            CommunityError::AccountExists(u) => write!(f, "account {u:?} already exists"),
            CommunityError::NoSuchAccount(u) => write!(f, "no account named {u:?}"),
            CommunityError::NoSuchProfile(i) => write!(f, "no profile at index {i}"),
            CommunityError::Codec(m) => write!(f, "malformed wire message: {m}"),
            CommunityError::MemberNotConnected(m) => {
                write!(f, "member {m:?} is not connected")
            }
            CommunityError::NoConnectedMembers => write!(f, "no members are connected"),
        }
    }
}

impl StdError for CommunityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CommunityError::AccountExists("bob".into())
            .to_string()
            .contains("bob"));
        assert!(CommunityError::Codec("truncated".into())
            .to_string()
            .contains("truncated"));
    }

    #[test]
    fn implements_std_error() {
        fn takes(_: &dyn StdError) {}
        takes(&CommunityError::NotLoggedIn);
    }
}
