//! Epidemic payloads and the node-side gossip runtime.
//!
//! The peerhood [`Gossip`] state machine is payload-agnostic; this module
//! defines what the community application actually disseminates
//! ([`GossipContent`]) and wraps the state machine in a [`GossipRuntime`]
//! that owns the node-facing bookkeeping:
//!
//! * idempotent link-up/link-down tracking (radio events can repeat);
//! * per-origin sequence numbers feeding [`message_id`];
//! * the gossip-learned membership table ([`GossipRuntime::remote_members`])
//!   that [`crate::discovery::Discovery`] merges with radio neighbors, so
//!   multi-hop members join groups through the very same path
//!   single-hop encounters use;
//! * a log of received shared-content blobs with hop counts and receipt
//!   times, which the harnesses turn into delivery-ratio and latency
//!   metrics.
//!
//! Nothing here performs IO either: [`crate::node::CommunityApp`] drains
//! [`GossipRuntime::take_outbox`] into `PS_GOSSIP` wire frames.

use std::collections::{BTreeMap, BTreeSet};

use codec::{decode_seq, encode_seq, Bytes, DecodeError, Wire};
use netsim::SimTime;
use peerhood::gossip::{message_id, Gossip, GossipConfig, GossipMsg, GossipStats};

use crate::groups::GroupEvent;
use crate::interest::Interest;

/// What one gossip payload carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipContent {
    /// Membership announcement: a member's name and interests, flooded so
    /// devices that never meet the member directly can still group with
    /// them.
    Member {
        /// The announcing member's name.
        member: String,
        /// Their interests at announcement time.
        interests: Vec<Interest>,
    },
    /// Group news from a remote node's recompute (notification only — the
    /// receiver traces it but derives its own groups from membership).
    Group {
        /// The node whose recompute produced the event.
        origin: String,
        /// The event itself.
        event: GroupEvent,
    },
    /// Shared content, disseminated whole.
    Blob {
        /// The publishing member's name.
        origin: String,
        /// A human-readable content name.
        name: String,
        /// The content bytes.
        data: Bytes,
    },
}

mod tag {
    pub const MEMBER: u8 = 1;
    pub const GROUP: u8 = 2;
    pub const BLOB: u8 = 3;
}

impl Wire for GossipContent {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            GossipContent::Member { member, interests } => {
                out.push(tag::MEMBER);
                member.encode_to(out);
                encode_seq(interests, out);
            }
            GossipContent::Group { origin, event } => {
                out.push(tag::GROUP);
                origin.encode_to(out);
                event.encode_to(out);
            }
            GossipContent::Blob { origin, name, data } => {
                out.push(tag::BLOB);
                origin.encode_to(out);
                name.encode_to(out);
                data.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            tag::MEMBER => Ok(GossipContent::Member {
                member: String::decode(input)?,
                interests: decode_seq::<Interest>(input)?,
            }),
            tag::GROUP => Ok(GossipContent::Group {
                origin: String::decode(input)?,
                event: GroupEvent::decode(input)?,
            }),
            tag::BLOB => Ok(GossipContent::Blob {
                origin: String::decode(input)?,
                name: String::decode(input)?,
                data: Bytes::decode(input)?,
            }),
            t => Err(DecodeError::BadTag {
                what: "GossipContent",
                tag: t,
            }),
        }
    }
}

/// One shared-content blob that reached this node, with the metrics the
/// harnesses aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobDelivery {
    /// Receipt time (publication time at the origin itself).
    pub at: SimTime,
    /// The publishing member.
    pub origin: String,
    /// The content name.
    pub name: String,
    /// Radio hops from the origin (0 at the origin).
    pub hops: u8,
    /// Payload size in bytes.
    pub size: usize,
}

/// Decoded gossip news for the node to act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipNews {
    /// A (possibly multi-hop) member announcement arrived or changed.
    Member {
        /// The member's name.
        member: String,
        /// Hops from the announcing node.
        hops: u8,
    },
    /// Remote group news to surface in the trace.
    Group {
        /// The node whose recompute produced the event.
        origin: String,
        /// The event.
        event: GroupEvent,
        /// Hops from the origin.
        hops: u8,
    },
    /// A shared-content blob arrived (already logged in the runtime).
    Blob(BlobDelivery),
}

/// The node-side gossip runtime: the [`Gossip`] state machine plus the
/// community-specific bookkeeping listed in the module docs.
#[derive(Clone, Debug)]
pub struct GossipRuntime {
    gossip: Gossip,
    next_seq: u64,
    /// Interests of members learned through gossip, by member name.
    remote: BTreeMap<String, Vec<Interest>>,
    blob_log: Vec<BlobDelivery>,
    /// Peers with a live radio link (dedups repeated up/down events).
    links: BTreeSet<String>,
    /// The last `(member, interests)` announcement published, to re-announce
    /// only on change.
    announced: Option<(String, Vec<Interest>)>,
}

impl GossipRuntime {
    /// Creates the runtime for device `me` under `config`.
    pub fn new(me: impl Into<String>, config: GossipConfig) -> Self {
        GossipRuntime {
            gossip: Gossip::new(me, config),
            next_seq: 0,
            remote: BTreeMap::new(),
            blob_log: Vec::new(),
            links: BTreeSet::new(),
            announced: None,
        }
    }

    /// The underlying state machine (views, cache, stats).
    #[must_use]
    pub fn gossip(&self) -> &Gossip {
        &self.gossip
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &GossipConfig {
        self.gossip.config()
    }

    /// Broadcast-layer counters so far.
    #[must_use]
    pub fn stats(&self) -> GossipStats {
        self.gossip.stats()
    }

    /// A radio link to `peer` is usable. Returns whether this was a
    /// transition (repeat notifications are ignored).
    pub fn link_up(&mut self, peer: &str, now: SimTime) -> bool {
        if !self.links.insert(peer.to_string()) {
            return false;
        }
        self.gossip.neighbor_up(peer, now);
        true
    }

    /// The radio link to `peer` is gone. Returns whether this was a
    /// transition.
    pub fn link_down(&mut self, peer: &str, now: SimTime) -> bool {
        if !self.links.remove(peer) {
            return false;
        }
        self.gossip.neighbor_down(peer, now);
        true
    }

    /// Whether a live link to `peer` is currently tracked.
    #[must_use]
    pub fn is_linked(&self, peer: &str) -> bool {
        self.links.contains(peer)
    }

    /// Publishes a membership announcement if `(member, interests)` differs
    /// from the last one published. Returns whether anything was published.
    pub fn announce_member(&mut self, member: &str, interests: &[Interest], now: SimTime) -> bool {
        let current = (member.to_string(), interests.to_vec());
        if self.announced.as_ref() == Some(&current) {
            return false;
        }
        self.publish(
            GossipContent::Member {
                member: current.0.clone(),
                interests: current.1.clone(),
            },
            now,
        );
        self.announced = Some(current);
        true
    }

    /// Publishes group news from a local recompute.
    pub fn publish_group(&mut self, event: &GroupEvent, now: SimTime) {
        self.publish(
            GossipContent::Group {
                origin: self.gossip.me().to_string(),
                event: event.clone(),
            },
            now,
        );
    }

    /// Publishes a shared-content blob and logs it locally (the origin
    /// counts as a delivery at hop 0). Returns the message id.
    pub fn publish_blob(&mut self, origin: &str, name: &str, data: Bytes, now: SimTime) -> u64 {
        self.blob_log.push(BlobDelivery {
            at: now,
            origin: origin.to_string(),
            name: name.to_string(),
            hops: 0,
            size: data.as_slice().len(),
        });
        self.publish(
            GossipContent::Blob {
                origin: origin.to_string(),
                name: name.to_string(),
                data,
            },
            now,
        )
    }

    fn publish(&mut self, content: GossipContent, now: SimTime) -> u64 {
        let id = message_id(self.gossip.me(), self.next_seq);
        self.next_seq += 1;
        self.gossip.publish(id, Bytes::from(content.encode()), now);
        id
    }

    /// Feeds one incoming `PS_GOSSIP` batch from `peer` through the state
    /// machine, decoding first-time deliveries into [`GossipNews`].
    /// Undecodable payloads are dropped (they still count as delivered for
    /// dedup purposes).
    pub fn handle_batch(
        &mut self,
        peer: &str,
        msgs: Vec<GossipMsg>,
        now: SimTime,
    ) -> Vec<GossipNews> {
        // A batch proves the link is alive even if the connect event raced.
        self.link_up(peer, now);
        let mut news = Vec::new();
        for msg in msgs {
            for delivery in self.gossip.on_msg(peer, msg, now) {
                let Ok(content) = GossipContent::decode_exact(delivery.payload.as_slice()) else {
                    continue;
                };
                match content {
                    GossipContent::Member { member, interests } => {
                        if member == self.gossip.me() {
                            continue;
                        }
                        self.remote.insert(member.clone(), interests);
                        news.push(GossipNews::Member {
                            member,
                            hops: delivery.hops,
                        });
                    }
                    GossipContent::Group { origin, event } => {
                        news.push(GossipNews::Group {
                            origin,
                            event,
                            hops: delivery.hops,
                        });
                    }
                    GossipContent::Blob { origin, name, data } => {
                        let record = BlobDelivery {
                            at: now,
                            origin,
                            name,
                            hops: delivery.hops,
                            size: data.as_slice().len(),
                        };
                        self.blob_log.push(record.clone());
                        news.push(GossipNews::Blob(record));
                    }
                }
            }
        }
        news
    }

    /// Periodic housekeeping; call once per
    /// [`GossipConfig::tick_interval`](peerhood::gossip::GossipConfig::tick_interval).
    pub fn on_tick(&mut self, now: SimTime) {
        self.gossip.on_tick(now);
    }

    /// Drains queued `(destination, message)` pairs for the transport.
    pub fn take_outbox(&mut self) -> Vec<(String, GossipMsg)> {
        self.gossip.take_outbox()
    }

    /// Members learned through gossip, with their announced interests —
    /// merged into [`crate::discovery::Discovery`]'s neighbor list (direct
    /// radio knowledge wins on conflict).
    #[must_use]
    pub fn remote_members(&self) -> &BTreeMap<String, Vec<Interest>> {
        &self.remote
    }

    /// Every blob that reached this node (origin's own publishes included,
    /// at hop 0), in receipt order.
    #[must_use]
    pub fn blob_log(&self) -> &[BlobDelivery] {
        &self.blob_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GossipConfig {
        GossipConfig::default().rng_salt(11)
    }

    fn interests(items: &[&str]) -> Vec<Interest> {
        items.iter().map(Interest::new).collect()
    }

    #[test]
    fn content_wire_round_trips_every_variant() {
        let contents = [
            GossipContent::Member {
                member: "alice".into(),
                interests: interests(&["Football", "Chess"]),
            },
            GossipContent::Group {
                origin: "alice-phone".into(),
                event: GroupEvent::GroupFormed {
                    key: "football".into(),
                    members: vec!["alice".into(), "bob".into()],
                },
            },
            GossipContent::Blob {
                origin: "alice".into(),
                name: "photo.jpg".into(),
                data: Bytes::from(vec![1, 2, 3]),
            },
        ];
        for content in &contents {
            let back = GossipContent::decode_exact(&content.encode()).expect("round trip");
            assert_eq!(&back, content);
        }
        assert!(matches!(
            GossipContent::decode_exact(&[0x4f]),
            Err(DecodeError::BadTag {
                what: "GossipContent",
                ..
            })
        ));
    }

    #[test]
    fn link_transitions_are_idempotent() {
        let t = SimTime::ZERO;
        let mut rt = GossipRuntime::new("a", cfg());
        assert!(rt.link_up("b", t));
        assert!(!rt.link_up("b", t));
        assert!(rt.is_linked("b"));
        assert!(rt.link_down("b", t));
        assert!(!rt.link_down("b", t));
        assert!(!rt.is_linked("b"));
    }

    #[test]
    fn member_announcements_flow_between_runtimes() {
        let t = SimTime::ZERO;
        let mut a = GossipRuntime::new("a", cfg());
        let mut b = GossipRuntime::new("b", cfg());
        a.link_up("b", t);
        b.link_up("a", t);
        a.take_outbox();
        b.take_outbox();
        assert!(a.announce_member("alice", &interests(&["football"]), t));
        // Unchanged announcement is suppressed.
        assert!(!a.announce_member("alice", &interests(&["football"]), t));
        let batch: Vec<GossipMsg> = a
            .take_outbox()
            .into_iter()
            .filter(|(dest, _)| dest == "b")
            .map(|(_, m)| m)
            .collect();
        assert!(!batch.is_empty());
        let news = b.handle_batch("a", batch, t);
        assert!(matches!(
            news.as_slice(),
            [GossipNews::Member { member, hops: 1 }] if member == "alice"
        ));
        assert_eq!(b.remote_members()["alice"], interests(&["football"]),);
        // Changed interests re-announce.
        assert!(a.announce_member("alice", &interests(&["football", "chess"]), t));
    }

    #[test]
    fn blob_publish_logs_at_origin_and_at_receiver() {
        let t = SimTime::from_secs(30);
        let mut a = GossipRuntime::new("a", cfg());
        let mut b = GossipRuntime::new("b", cfg());
        a.link_up("b", t);
        b.link_up("a", t);
        a.take_outbox();
        b.take_outbox();
        let id = a.publish_blob("alice", "song.mp3", Bytes::from(vec![9; 16]), t);
        assert!(a.gossip().has_seen(id));
        assert_eq!(a.blob_log().len(), 1);
        assert_eq!(a.blob_log()[0].hops, 0);
        let batch: Vec<GossipMsg> = a.take_outbox().into_iter().map(|(_, m)| m).collect();
        let news = b.handle_batch("a", batch, t + std::time::Duration::from_secs(2));
        assert!(matches!(news.as_slice(), [GossipNews::Blob(d)] if d.hops == 1 && d.size == 16));
        assert_eq!(b.blob_log().len(), 1);
        assert_eq!(b.blob_log()[0].origin, "alice");
    }

    #[test]
    fn own_member_announcement_is_not_recorded_as_remote() {
        let t = SimTime::ZERO;
        let mut a = GossipRuntime::new("a", cfg());
        let mut b = GossipRuntime::new("b", cfg());
        a.link_up("b", t);
        b.link_up("a", t);
        a.take_outbox();
        b.take_outbox();
        // b's own user is "bob" but suppose a relays an announcement whose
        // member name happens to be the *device* name "b" — the runtime keys
        // suppression on the gossip node name.
        a.announce_member("b", &interests(&["x"]), t);
        let batch: Vec<GossipMsg> = a.take_outbox().into_iter().map(|(_, m)| m).collect();
        let news = b.handle_batch("a", batch, t);
        assert!(news.is_empty());
        assert!(b.remote_members().is_empty());
    }
}
