//! The PeerHood Community server: Table 6's request dispatch.
//!
//! "Every PTD must contain the application server and server must run
//! continuously" (§5.2.3.1). The server is a pure function from
//! `(store, request, time)` to `(store', response)`: it owns no I/O, so the
//! same dispatch runs under the simulator and the live TCP driver, and unit
//! tests can drive every row of Table 6 directly.

use std::collections::BTreeMap;

use netsim::SimTime;

use crate::error::CommunityError;
use crate::interest::Interest;
use crate::protocol::{Request, Response};
use crate::semantics::MatchPolicy;
use crate::store::MemberStore;

/// A bounded memory of responses to [`Request::Idempotent`] tokens.
///
/// Retried requests (the client timed out, the network dropped the reply)
/// hit the cache and get the **original** response replayed, so a mutating
/// operation like `PS_ADDPROFILECOMMENT` is applied at most once no matter
/// how many times the frame arrives. The cache is bounded: beyond `cap`
/// entries the smallest token is evicted first (tokens embed a per-client
/// sequence number in their low half, so small ≈ old).
#[derive(Clone, Debug, Default)]
pub struct ReplayCache {
    entries: BTreeMap<u64, Response>,
    cap: usize,
}

impl ReplayCache {
    /// A cache remembering at most `cap` responses (`cap == 0` disables
    /// replay protection entirely).
    pub fn new(cap: usize) -> ReplayCache {
        ReplayCache {
            entries: BTreeMap::new(),
            cap,
        }
    }

    /// Number of remembered responses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is remembered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, token: u64) -> Option<&Response> {
        self.entries.get(&token)
    }

    fn remember(&mut self, token: u64, response: Response) {
        if self.cap == 0 {
            return;
        }
        self.entries.insert(token, response);
        while self.entries.len() > self.cap {
            self.entries.pop_first();
        }
    }
}

/// Handles one client request with replay protection.
///
/// [`Request::Idempotent`] frames whose token is already in `cache` replay
/// the remembered response without touching the store; everything else is
/// dispatched through [`handle_request`] and (for idempotent frames) the
/// response remembered.
pub fn handle_request_cached(
    store: &mut MemberStore,
    policy: &MatchPolicy,
    cache: &mut ReplayCache,
    request: &Request,
    now: SimTime,
) -> Response {
    if let Request::Idempotent { token, .. } = request {
        if let Some(resp) = cache.lookup(*token) {
            return resp.clone();
        }
        let resp = handle_request(store, policy, request, now);
        cache.remember(*token, resp.clone());
        return resp;
    }
    handle_request(store, policy, request, now)
}

/// Handles one client request against the local member store.
///
/// `policy` is the interest-matching policy used for
/// `PS_GETINTERESTEDMEMBERLIST` (so a semantically taught device answers for
/// synonym interests too).
///
/// Internal failures (which [`try_handle_request`] reports as errors) are
/// folded into wire responses here, because a server must always answer:
/// a missing login session answers `NO_MEMBERS_YET` like any other
/// member-less device, anything else becomes a `Response::Error`.
pub fn handle_request(
    store: &mut MemberStore,
    policy: &MatchPolicy,
    request: &Request,
    now: SimTime,
) -> Response {
    match try_handle_request(store, policy, request, now) {
        Ok(resp) => resp,
        Err(CommunityError::NotLoggedIn | CommunityError::NoActiveAccount) => {
            Response::NoMembersYet
        }
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Handles one client request, reporting internal inconsistencies as typed
/// errors instead of panicking.
///
/// # Errors
///
/// Returns [`CommunityError::NoActiveAccount`] when the login session names
/// an account the store no longer holds.
pub fn try_handle_request(
    store: &mut MemberStore,
    policy: &MatchPolicy,
    request: &Request,
    now: SimTime,
) -> Result<Response, CommunityError> {
    // Every operation needs a logged-in member; without one the device
    // answers as the thesis's servers do for foreign member ids.
    let Some(active) = store.active_member().map(str::to_owned) else {
        return Ok(Response::NoMembersYet);
    };

    Ok(match request {
        Request::GetOnlineMemberList => Response::MemberList(vec![active]),
        Request::GetInterestList => {
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            Response::InterestList(
                account
                    .profile()
                    .interests
                    .iter()
                    .map(|i| i.display().to_owned())
                    .collect(),
            )
        }
        Request::GetInterestedMemberList { interest } => {
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            let asked = Interest::new(interest);
            let has = account
                .profile()
                .interests
                .iter()
                .any(|i| policy.matches(i, &asked));
            if has {
                Response::InterestedMembers(vec![active])
            } else {
                Response::InterestedMembers(Vec::new())
            }
        }
        Request::GetProfile { member, requester } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            // Intern before borrowing the account: repeat requesters cost a
            // refcount bump, not a fresh allocation per visit.
            let requester = store.intern_name(requester);
            let account = store
                .active_account_mut()
                .ok_or(CommunityError::NoActiveAccount)?;
            account.profile_mut().record_visit(requester, now);
            Response::Profile(account.profile_view())
        }
        Request::AddProfileComment {
            member,
            author,
            comment,
        } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            let author = store.intern_name(author);
            let account = store
                .active_account_mut()
                .ok_or(CommunityError::NoActiveAccount)?;
            account
                .profile_mut()
                .add_comment(author, comment.clone(), now);
            Response::CommentWritten
        }
        Request::CheckMemberId { member } => Response::CheckMemberResult(*member == active),
        Request::Message {
            to,
            from,
            subject,
            body,
        } => {
            if *to != active {
                return Ok(Response::MessageFailed);
            }
            let from = store.intern_name(from);
            let to = store.intern_name(to);
            let account = store
                .active_account_mut()
                .ok_or(CommunityError::NoActiveAccount)?;
            account.mailbox.deliver(crate::message::MailMessage {
                from,
                to,
                subject: subject.clone(),
                body: body.clone(),
                at: now,
            });
            Response::MessageWritten
        }
        Request::GetSharedContent { member, requester } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            if !account.trusted.contains(requester) {
                return Ok(Response::NotTrustedYet);
            }
            Response::SharedContent(account.shared.listing())
        }
        Request::GetTrustedFriends { member } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            Response::TrustedFriends(account.trusted.iter().cloned().collect())
        }
        Request::CheckTrusted { member, requester } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            if account.trusted.contains(requester) {
                Response::Trusted
            } else {
                Response::NotTrustedYet
            }
        }
        Request::FetchContent {
            member,
            requester,
            name,
        } => {
            if *member != active {
                return Ok(Response::NoMembersYet);
            }
            let account = store
                .active_account()
                .ok_or(CommunityError::NoActiveAccount)?;
            if !account.trusted.contains(requester) {
                return Ok(Response::NotTrustedYet);
            }
            match account.shared.fetch(name) {
                // `Bytes::clone` shares the payload: no copy per fetch.
                Some(data) => Response::Content {
                    name: name.clone(),
                    data: data.clone(),
                },
                None => Response::Error(format!("no shared item named {name:?}")),
            }
        }
        // Without a ReplayCache (see `handle_request_cached`) the envelope
        // is transparent: the wrapped operation runs exactly as if bare.
        // Nesting is impossible — the decoder rejects it.
        Request::Idempotent { inner, .. } => return try_handle_request(store, policy, inner, now),
        // Gossip-aware applications intercept `PS_GOSSIP` before the store
        // dispatch (the batch belongs to the node's `Gossip` state machine,
        // not to any member account); a bare store answers with an empty
        // batch so gossip-enabled peers can talk to gossip-free servers.
        Request::Gossip { .. } => Response::Gossip(Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn logged_in_store() -> MemberStore {
        let mut s = MemberStore::new();
        s.create_account(
            "bob",
            "pw",
            Profile::new("Bob").with_interests(["Football", "Biking"]),
        )
        .unwrap();
        s.login("bob", "pw").unwrap();
        s
    }

    fn ask(store: &mut MemberStore, req: Request) -> Response {
        handle_request(store, &MatchPolicy::Exact, &req, SimTime::from_secs(1))
    }

    #[test]
    fn logged_out_device_answers_no_members_yet() {
        let mut s = MemberStore::new();
        assert_eq!(
            ask(&mut s, Request::GetOnlineMemberList),
            Response::NoMembersYet
        );
    }

    #[test]
    fn online_member_list_returns_active_user() {
        let mut s = logged_in_store();
        assert_eq!(
            ask(&mut s, Request::GetOnlineMemberList),
            Response::MemberList(vec!["bob".into()])
        );
    }

    #[test]
    fn interest_list_returns_display_forms() {
        let mut s = logged_in_store();
        assert_eq!(
            ask(&mut s, Request::GetInterestList),
            Response::InterestList(vec!["Biking".into(), "Football".into()])
        );
    }

    #[test]
    fn interested_member_list_honours_matching_policy() {
        let mut s = logged_in_store();
        assert_eq!(
            ask(
                &mut s,
                Request::GetInterestedMemberList {
                    interest: "FOOTBALL".into()
                }
            ),
            Response::InterestedMembers(vec!["bob".into()])
        );
        assert_eq!(
            ask(
                &mut s,
                Request::GetInterestedMemberList {
                    interest: "cycling".into()
                }
            ),
            Response::InterestedMembers(vec![])
        );
        // With taught semantics, cycling matches biking.
        let mut policy = MatchPolicy::Exact;
        policy.teach(&Interest::new("biking"), &Interest::new("cycling"));
        let resp = handle_request(
            &mut s,
            &policy,
            &Request::GetInterestedMemberList {
                interest: "cycling".into(),
            },
            SimTime::from_secs(2),
        );
        assert_eq!(resp, Response::InterestedMembers(vec!["bob".into()]));
    }

    #[test]
    fn get_profile_records_visitor_and_serves_only_local_member() {
        let mut s = logged_in_store();
        let resp = ask(
            &mut s,
            Request::GetProfile {
                member: "bob".into(),
                requester: "alice".into(),
            },
        );
        match resp {
            Response::Profile(view) => {
                assert_eq!(view.member, "bob");
                assert_eq!(view.interests.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            &*s.active_account().unwrap().profile().visitors[0].visitor,
            "alice"
        );
        // Foreign member id: NO_MEMBERS_YET, no visit recorded.
        assert_eq!(
            ask(
                &mut s,
                Request::GetProfile {
                    member: "carol".into(),
                    requester: "alice".into()
                }
            ),
            Response::NoMembersYet
        );
        assert_eq!(s.active_account().unwrap().profile().visitors.len(), 1);
    }

    #[test]
    fn comments_are_written_to_local_profile_only() {
        let mut s = logged_in_store();
        assert_eq!(
            ask(
                &mut s,
                Request::AddProfileComment {
                    member: "bob".into(),
                    author: "alice".into(),
                    comment: "great taste".into()
                }
            ),
            Response::CommentWritten
        );
        assert_eq!(
            ask(
                &mut s,
                Request::AddProfileComment {
                    member: "zed".into(),
                    author: "alice".into(),
                    comment: "x".into()
                }
            ),
            Response::NoMembersYet
        );
        let comments = &s.active_account().unwrap().profile().comments;
        assert_eq!(comments.len(), 1);
        assert_eq!(&*comments[0].author, "alice");
    }

    #[test]
    fn check_member_id_compares_against_active() {
        let mut s = logged_in_store();
        assert_eq!(
            ask(
                &mut s,
                Request::CheckMemberId {
                    member: "bob".into()
                }
            ),
            Response::CheckMemberResult(true)
        );
        assert_eq!(
            ask(
                &mut s,
                Request::CheckMemberId {
                    member: "eve".into()
                }
            ),
            Response::CheckMemberResult(false)
        );
    }

    #[test]
    fn message_delivery_and_misdelivery() {
        let mut s = logged_in_store();
        let msg = Request::Message {
            to: "bob".into(),
            from: "alice".into(),
            subject: "hi".into(),
            body: "pub at 8?".into(),
        };
        assert_eq!(ask(&mut s, msg), Response::MessageWritten);
        assert_eq!(s.active_account().unwrap().mailbox.inbox().len(), 1);
        let wrong = Request::Message {
            to: "someone-else".into(),
            from: "alice".into(),
            subject: "hi".into(),
            body: "x".into(),
        };
        assert_eq!(ask(&mut s, wrong), Response::MessageFailed);
    }

    #[test]
    fn shared_content_requires_trust() {
        let mut s = logged_in_store();
        s.require_active()
            .unwrap()
            .shared
            .share("song.mp3", "music", vec![1, 2, 3]);
        let req = Request::GetSharedContent {
            member: "bob".into(),
            requester: "alice".into(),
        };
        assert_eq!(ask(&mut s, req.clone()), Response::NotTrustedYet);
        s.require_active().unwrap().trusted.insert("alice".into());
        match ask(&mut s, req) {
            Response::SharedContent(items) => assert_eq!(items[0].name, "song.mp3"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn check_trusted_phases_match_msc16() {
        let mut s = logged_in_store();
        let check = Request::CheckTrusted {
            member: "bob".into(),
            requester: "alice".into(),
        };
        assert_eq!(ask(&mut s, check.clone()), Response::NotTrustedYet);
        s.require_active().unwrap().trusted.insert("alice".into());
        assert_eq!(ask(&mut s, check), Response::Trusted);
        // Foreign member id.
        assert_eq!(
            ask(
                &mut s,
                Request::CheckTrusted {
                    member: "zed".into(),
                    requester: "alice".into()
                }
            ),
            Response::NoMembersYet
        );
    }

    #[test]
    fn trusted_friends_listing() {
        let mut s = logged_in_store();
        s.require_active().unwrap().trusted.insert("carol".into());
        s.require_active().unwrap().trusted.insert("alice".into());
        assert_eq!(
            ask(
                &mut s,
                Request::GetTrustedFriends {
                    member: "bob".into()
                }
            ),
            Response::TrustedFriends(vec!["alice".into(), "carol".into()])
        );
    }

    #[test]
    fn idempotent_replay_applies_comment_once() {
        let mut s = logged_in_store();
        let mut cache = ReplayCache::new(16);
        let req = Request::Idempotent {
            token: (3u64 << 32) | 1,
            inner: Box::new(Request::AddProfileComment {
                member: "bob".into(),
                author: "alice".into(),
                comment: "only once please".into(),
            }),
        };
        let policy = MatchPolicy::Exact;
        for _ in 0..3 {
            let resp =
                handle_request_cached(&mut s, &policy, &mut cache, &req, SimTime::from_secs(1));
            assert_eq!(resp, Response::CommentWritten);
        }
        assert_eq!(s.active_account().unwrap().profile().comments.len(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn replay_cache_is_bounded_and_evicts_oldest() {
        let mut s = logged_in_store();
        let mut cache = ReplayCache::new(2);
        let policy = MatchPolicy::Exact;
        for seq in 0..5u64 {
            let req = Request::Idempotent {
                token: seq,
                inner: Box::new(Request::Message {
                    to: "bob".into(),
                    from: "alice".into(),
                    subject: format!("m{seq}"),
                    body: "x".into(),
                }),
            };
            handle_request_cached(&mut s, &policy, &mut cache, &req, SimTime::from_secs(1));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(s.active_account().unwrap().mailbox.inbox().len(), 5);
        // An evicted token re-applies: at-most-once holds only within the
        // cache window, which the policy sizes far beyond any retry horizon.
        let req = Request::Idempotent {
            token: 0,
            inner: Box::new(Request::Message {
                to: "bob".into(),
                from: "alice".into(),
                subject: "m0".into(),
                body: "x".into(),
            }),
        };
        handle_request_cached(&mut s, &policy, &mut cache, &req, SimTime::from_secs(2));
        assert_eq!(s.active_account().unwrap().mailbox.inbox().len(), 6);
    }

    #[test]
    fn bare_idempotent_envelope_is_transparent() {
        let mut s = logged_in_store();
        let req = Request::Idempotent {
            token: 9,
            inner: Box::new(Request::GetOnlineMemberList),
        };
        assert_eq!(ask(&mut s, req), Response::MemberList(vec!["bob".into()]));
    }

    #[test]
    fn fetch_content_transfers_bytes_to_trusted() {
        let mut s = logged_in_store();
        s.require_active()
            .unwrap()
            .shared
            .share("a.txt", "text", vec![9, 9]);
        s.require_active().unwrap().trusted.insert("alice".into());
        let resp = ask(
            &mut s,
            Request::FetchContent {
                member: "bob".into(),
                requester: "alice".into(),
                name: "a.txt".into(),
            },
        );
        assert_eq!(
            resp,
            Response::Content {
                name: "a.txt".into(),
                data: vec![9, 9].into()
            }
        );
        // Missing item -> error.
        assert!(matches!(
            ask(
                &mut s,
                Request::FetchContent {
                    member: "bob".into(),
                    requester: "alice".into(),
                    name: "missing".into()
                }
            ),
            Response::Error(_)
        ));
        // Untrusted requester -> NOT_TRUSTED_YET.
        assert_eq!(
            ask(
                &mut s,
                Request::FetchContent {
                    member: "bob".into(),
                    requester: "eve".into(),
                    name: "a.txt".into()
                }
            ),
            Response::NotTrustedYet
        );
    }
}
