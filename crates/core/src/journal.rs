//! Persistent store journal: snapshot plus incremental append.
//!
//! The live serving reactor must survive restarts without losing the
//! community state it accumulated (visitor logs, comments, mail). A
//! [`StoreJournal`] is one file holding
//!
//! ```text
//! "PHCJ\x01"                                  magic + format version
//! [u32 BE len][MemberStore snapshot]          full state at last compact
//! [u32 BE len][SimTime µs][Request]*          mutations applied since
//! ```
//!
//! Appends are cheap (one framed record per mutation); a **compact**
//! rewrites the file as a fresh snapshot with no tail. Replay is tolerant:
//! a truncated trailing record (the daemon died mid-write) is silently
//! dropped, everything before it is kept — exactly the
//! redo-log-with-checkpoints discipline, sized for a device-local store.
//!
//! [`JournalPersist`] adapts the journal to the reactor's
//! [`LivePersist`] hook: it journals every inbound frame that decodes to a
//! [mutating](Request::is_mutation) request and compacts on checkpoint.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use codec::Wire;
use netsim::SimTime;
use peerhood::live::LivePersist;

use crate::node::CommunityApp;
use crate::protocol::Request;
use crate::semantics::MatchPolicy;
use crate::server::handle_request;
use crate::store::MemberStore;

const JOURNAL_MAGIC: &[u8; 5] = b"PHCJ\x01";

fn invalid_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_owned())
}

/// A snapshot-plus-append journal for one device's [`MemberStore`].
///
/// See the [module docs](self) for the file format.
#[derive(Debug)]
pub struct StoreJournal {
    path: PathBuf,
    file: File,
    appended: u64,
}

impl StoreJournal {
    /// Opens the journal at `path`, creating it (with an empty store) if
    /// absent, and replays it into the store a restarted daemon resumes
    /// from.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a corrupt magic/snapshot block. A
    /// truncated record *tail* is not an error — the intact prefix wins.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(StoreJournal, MemberStore)> {
        let path = path.into();
        if !path.exists() {
            let store = MemberStore::new();
            Self::write_snapshot_file(&path, &store)?;
            let file = OpenOptions::new().append(true).open(&path)?;
            return Ok((
                StoreJournal {
                    path,
                    file,
                    appended: 0,
                },
                store,
            ));
        }

        let bytes = fs::read(&path)?;
        let mut input: &[u8] = &bytes;
        let magic = codec::take(&mut input, JOURNAL_MAGIC.len())
            .map_err(|_| invalid_data("short journal"))?;
        if magic != JOURNAL_MAGIC {
            return Err(invalid_data("journal magic mismatch"));
        }
        let snapshot =
            Vec::<u8>::decode(&mut input).map_err(|_| invalid_data("journal snapshot"))?;
        let mut store = MemberStore::from_snapshot(&snapshot)
            .map_err(|_| invalid_data("journal snapshot body"))?;

        // Replay appended mutations; stop (quietly) at a truncated tail.
        let policy = MatchPolicy::Exact;
        let mut replayed = 0u64;
        loop {
            let mut probe = input;
            let Ok(record) = Vec::<u8>::decode(&mut probe) else {
                break;
            };
            let mut rec: &[u8] = &record;
            // `Request::decode` is the exact-length inherent decoder: the
            // record must hold exactly one request after the timestamp.
            let (Ok(micros), Ok(req)) = (u64::decode(&mut rec), Request::decode(rec)) else {
                break;
            };
            handle_request(&mut store, &policy, &req, SimTime::from_micros(micros));
            replayed += 1;
            input = probe;
        }

        // Chop a torn tail off the file so future appends follow the valid
        // prefix instead of the partial record.
        let valid = bytes.len() - input.len();
        if valid < bytes.len() {
            OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(valid as u64)?;
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            StoreJournal {
                path,
                file,
                appended: replayed,
            },
            store,
        ))
    }

    /// Appends one mutation record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns any write error.
    pub fn append(&mut self, request: &Request, now: SimTime) -> io::Result<()> {
        let mut record = Vec::new();
        now.as_micros().encode_to(&mut record);
        request.encode_to(&mut record);
        let mut framed = Vec::with_capacity(4 + record.len());
        record.encode_to(&mut framed); // Vec<u8> encodes as [u32 len][bytes]
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.appended += 1;
        Ok(())
    }

    /// Rewrites the journal as a fresh snapshot of `store` with an empty
    /// tail (atomically: write-temp-then-rename).
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn compact(&mut self, store: &MemberStore) -> io::Result<()> {
        Self::write_snapshot_file(&self.path, store)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.appended = 0;
        Ok(())
    }

    /// Records appended since the last compact (after `open`: records that
    /// were replayed from the tail).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_snapshot_file(path: &Path, store: &MemberStore) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(JOURNAL_MAGIC);
        store.to_snapshot().encode_to(&mut out);
        let tmp = path.with_extension("journal.tmp");
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, path)
    }
}

/// [`LivePersist`] adapter: journals every inbound frame that decodes to a
/// [mutating](Request::is_mutation) community request; checkpoints compact
/// the journal around the app's current store.
#[derive(Debug)]
pub struct JournalPersist {
    journal: StoreJournal,
}

impl JournalPersist {
    /// Wraps an open journal.
    pub fn new(journal: StoreJournal) -> Self {
        JournalPersist { journal }
    }

    /// Opens (or creates) the journal at `path` and returns the adapter
    /// together with the replayed store to resume from.
    ///
    /// # Errors
    ///
    /// See [`StoreJournal::open`].
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(JournalPersist, MemberStore)> {
        let (journal, store) = StoreJournal::open(path)?;
        Ok((JournalPersist { journal }, store))
    }
}

impl LivePersist<CommunityApp> for JournalPersist {
    fn record(&mut self, frame: &[u8], now: SimTime) {
        // Non-request frames (handshakes of other services, garbage) and
        // read-only requests are not journal-worthy. Append errors must
        // not take down the serving path; the periodic checkpoint heals.
        if let Ok(req) = Request::decode_exact(frame) {
            if req.is_mutation() {
                let _ = self.journal.append(&req, now);
            }
        }
    }

    fn checkpoint(&mut self, app: &CommunityApp) {
        let _ = self.journal.compact(app.store());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ph-journal-{tag}-{}.journal", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn seeded_store() -> MemberStore {
        let mut s = MemberStore::new();
        s.create_account(
            "bob",
            "pw",
            Profile::new("Bob").with_interests(["Football"]),
        )
        .unwrap();
        s.login("bob", "pw").unwrap();
        s
    }

    #[test]
    fn fresh_journal_starts_empty_and_replays_appends() {
        let path = tmp_path("fresh");
        {
            let (mut journal, store) = StoreJournal::open(&path).unwrap();
            assert_eq!(store, MemberStore::new());
            // Compact around a real store, then append mutations.
            let store = seeded_store();
            journal.compact(&store).unwrap();
            journal
                .append(
                    &Request::AddProfileComment {
                        member: "bob".into(),
                        author: "alice".into(),
                        comment: "survives restarts".into(),
                    },
                    SimTime::from_secs(1),
                )
                .unwrap();
            journal
                .append(
                    &Request::Message {
                        to: "bob".into(),
                        from: "alice".into(),
                        subject: "hi".into(),
                        body: "x".into(),
                    },
                    SimTime::from_secs(2),
                )
                .unwrap();
        }
        // "Restart": replay resumes snapshot + tail.
        let (journal, store) = StoreJournal::open(&path).unwrap();
        assert_eq!(journal.appended(), 2);
        let acc = store.account("bob").unwrap();
        assert_eq!(acc.profile().comments.len(), 1);
        assert_eq!(acc.mailbox.inbox().len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn compact_resets_tail_but_keeps_state() {
        let path = tmp_path("compact");
        let (mut journal, _) = StoreJournal::open(&path).unwrap();
        let mut store = seeded_store();
        journal.compact(&store).unwrap();
        let req = Request::AddProfileComment {
            member: "bob".into(),
            author: "alice".into(),
            comment: "c".into(),
        };
        // Apply + journal, then compact around the new state.
        handle_request(&mut store, &MatchPolicy::Exact, &req, SimTime::from_secs(1));
        journal.append(&req, SimTime::from_secs(1)).unwrap();
        journal.compact(&store).unwrap();
        assert_eq!(journal.appended(), 0);
        let (journal, replayed) = StoreJournal::open(&path).unwrap();
        assert_eq!(journal.appended(), 0, "compacted journal has no tail");
        assert_eq!(replayed.account("bob").unwrap().profile().comments.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let path = tmp_path("truncated");
        {
            let (mut journal, _) = StoreJournal::open(&path).unwrap();
            journal.compact(&seeded_store()).unwrap();
            journal
                .append(
                    &Request::Message {
                        to: "bob".into(),
                        from: "alice".into(),
                        subject: "whole".into(),
                        body: "x".into(),
                    },
                    SimTime::from_secs(1),
                )
                .unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut journal, store) = StoreJournal::open(&path).unwrap();
        assert_eq!(journal.appended(), 0, "torn record dropped");
        assert_eq!(store.account("bob").unwrap().mailbox.inbox().len(), 0);
        // The torn bytes were chopped, so fresh appends replay cleanly.
        journal
            .append(
                &Request::Message {
                    to: "bob".into(),
                    from: "alice".into(),
                    subject: "after the crash".into(),
                    body: "y".into(),
                },
                SimTime::from_secs(2),
            )
            .unwrap();
        let (_, store) = StoreJournal::open(&path).unwrap();
        assert_eq!(store.account("bob").unwrap().mailbox.inbox().len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_magic_is_an_error() {
        let path = tmp_path("magic");
        fs::write(&path, b"not a journal").unwrap();
        assert!(StoreJournal::open(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_persist_records_only_mutations() {
        let path = tmp_path("persist");
        let (mut persist, _) = JournalPersist::open(&path).unwrap();
        let app = CommunityApp::new(seeded_store());
        persist.checkpoint(&app);
        // A read-only request: not journaled.
        persist.record(
            &Request::GetOnlineMemberList.encode(),
            SimTime::from_secs(1),
        );
        assert_eq!(persist.journal.appended(), 0);
        // GetProfile writes the visitor log: journaled.
        persist.record(
            &Request::GetProfile {
                member: "bob".into(),
                requester: "alice".into(),
            }
            .encode(),
            SimTime::from_secs(2),
        );
        assert_eq!(persist.journal.appended(), 1);
        // Garbage frames are ignored.
        persist.record(b"\xffnot a request", SimTime::from_secs(3));
        assert_eq!(persist.journal.appended(), 1);
        // Restart: the visit survived.
        drop(persist);
        let (_, store) = JournalPersist::open(&path).unwrap();
        assert_eq!(
            &*store.account("bob").unwrap().profile().visitors[0].visitor,
            "alice"
        );
        let _ = fs::remove_file(&path);
    }
}
