//! Dynamic group discovery — the thesis's core algorithm (Figure 6).
//!
//! > "Initially when the user starts the social networking application, the
//! > application collects the list of active user's personal interests and
//! > gets the list of all the nearby devices. A personal interest of the
//! > active user is compared to personal interests of other nearby users. If
//! > the interest between active user and remote user matches than both ...
//! > are listed in same interest group. Similarly, each interest is compared
//! > with the personal interests of all the found nearby members ..."
//!
//! [`discover_groups`] is that algorithm as a pure function; the
//! [`crate::node::CommunityApp`] re-runs it whenever the neighborhood or an
//! interest list changes, which is what makes the groups *dynamic*.

use std::collections::BTreeMap;

use crate::interest::Interest;
use crate::semantics::MatchPolicy;

/// One dynamically formed interest group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// The group key under the active matching policy (normalized interest
    /// or synonym-class representative).
    pub key: String,
    /// A human-readable label (the first display form seen).
    pub label: String,
    /// Member names, always including the local user, in name order.
    pub members: Vec<String>,
}

impl Group {
    /// Whether `member` is in the group.
    pub fn contains(&self, member: &str) -> bool {
        self.members.iter().any(|m| m == member)
    }
}

/// The result of one run of the Figure 6 algorithm: groups keyed by
/// canonical interest.
pub type GroupSet = BTreeMap<String, Group>;

/// Runs dynamic group discovery for `me` (with interests `own`) against the
/// currently known `neighbors` (`(member name, their interests)` pairs).
///
/// A group forms for each of the user's own interests that at least one
/// neighbor shares (under `policy`); the group contains the local user plus
/// every matching neighbor. This is exactly the per-interest loop of
/// Figure 6 — neighbors' interests the local user does *not* hold form no
/// group (the user can still join such groups manually at the
/// [`crate::groups::GroupRegistry`] level).
pub fn discover_groups(
    me: &str,
    own: &[Interest],
    neighbors: &[(String, Vec<Interest>)],
    policy: &MatchPolicy,
) -> GroupSet {
    let mut groups = GroupSet::new();
    for interest in own {
        let key = policy.group_key(interest);
        for (name, their) in neighbors {
            let matches = their.iter().any(|t| policy.matches(interest, t));
            if matches {
                let group = groups.entry(key.clone()).or_insert_with(|| Group {
                    key: key.clone(),
                    label: interest.display().to_owned(),
                    members: vec![me.to_owned()],
                });
                if !group.contains(name) {
                    group.members.push(name.clone());
                }
            }
        }
    }
    for group in groups.values_mut() {
        group.members.sort();
        group.members.dedup();
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interests(items: &[&str]) -> Vec<Interest> {
        items.iter().map(|s| Interest::new(*s)).collect()
    }

    fn neighbors(items: &[(&str, &[&str])]) -> Vec<(String, Vec<Interest>)> {
        items
            .iter()
            .map(|(n, is)| ((*n).to_owned(), interests(is)))
            .collect()
    }

    #[test]
    fn no_neighbors_no_groups() {
        let g = discover_groups("me", &interests(&["football"]), &[], &MatchPolicy::Exact);
        assert!(g.is_empty());
    }

    #[test]
    fn matching_interest_forms_group_with_both_members() {
        let g = discover_groups(
            "me",
            &interests(&["Football"]),
            &neighbors(&[("bob", &["football", "chess"])]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g.len(), 1);
        let group = &g["football"];
        assert_eq!(group.members, vec!["bob", "me"]);
        assert_eq!(group.label, "Football");
    }

    #[test]
    fn unshared_neighbor_interests_form_no_group() {
        // Bob's chess interest doesn't concern me: per Figure 6, groups are
        // driven by the *active user's* interests.
        let g = discover_groups(
            "me",
            &interests(&["football"]),
            &neighbors(&[("bob", &["chess"])]),
            &MatchPolicy::Exact,
        );
        assert!(g.is_empty());
    }

    #[test]
    fn each_own_interest_gets_its_own_group() {
        let g = discover_groups(
            "me",
            &interests(&["football", "chess", "sauna"]),
            &neighbors(&[
                ("bob", &["football", "sauna"]),
                ("carol", &["chess"]),
                ("dave", &["football"]),
            ]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g["football"].members, vec!["bob", "dave", "me"]);
        assert_eq!(g["chess"].members, vec!["carol", "me"]);
        assert_eq!(g["sauna"].members, vec!["bob", "me"]);
    }

    #[test]
    fn exact_policy_fragments_synonyms_like_the_thesis_describes() {
        // The §5.2.6 limitation: biking and cycling end up apart.
        let g = discover_groups(
            "me",
            &interests(&["biking"]),
            &neighbors(&[("bob", &["cycling"])]),
            &MatchPolicy::Exact,
        );
        assert!(g.is_empty(), "exact matching must not merge synonyms");
    }

    #[test]
    fn semantic_policy_merges_taught_synonyms() {
        let mut policy = MatchPolicy::Exact;
        policy.teach(&Interest::new("biking"), &Interest::new("cycling"));
        let g = discover_groups(
            "me",
            &interests(&["biking"]),
            &neighbors(&[("bob", &["cycling"]), ("carol", &["Biking"])]),
            &policy,
        );
        assert_eq!(g.len(), 1);
        let group = &g["biking"];
        assert_eq!(group.members, vec!["bob", "carol", "me"]);
    }

    #[test]
    fn duplicate_neighbor_interests_do_not_duplicate_members() {
        let g = discover_groups(
            "me",
            &interests(&["a"]),
            &neighbors(&[("bob", &["a", "A", " a "])]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g["a"].members, vec!["bob", "me"]);
    }

    #[test]
    fn algorithm_is_deterministic_in_member_order() {
        let n = neighbors(&[("zed", &["x"]), ("ann", &["x"])]);
        let g = discover_groups("me", &interests(&["x"]), &n, &MatchPolicy::Exact);
        assert_eq!(g["x"].members, vec!["ann", "me", "zed"]);
    }
}
