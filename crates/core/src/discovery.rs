//! Dynamic group discovery — the thesis's core algorithm (Figure 6).
//!
//! > "Initially when the user starts the social networking application, the
//! > application collects the list of active user's personal interests and
//! > gets the list of all the nearby devices. A personal interest of the
//! > active user is compared to personal interests of other nearby users. If
//! > the interest between active user and remote user matches than both ...
//! > are listed in same interest group. Similarly, each interest is compared
//! > with the personal interests of all the found nearby members ..."
//!
//! [`Discovery`] is that algorithm as an entry point bound to the local
//! member and matching policy. [`Discovery::groups`] is the pure Figure 6
//! computation; [`Discovery::update`] runs it *through* a
//! [`GroupRegistry`](crate::groups::GroupRegistry) and returns the resulting
//! [`GroupEvent`](crate::groups::GroupEvent)s — the same event vocabulary
//! multi-hop gossip deliveries use, so local-encounter and epidemic
//! discovery share one API and one trace vocabulary. The
//! [`crate::node::CommunityApp`] re-runs it whenever the neighborhood, an
//! interest list, or the gossip-learned membership changes, which is what
//! makes the groups *dynamic*.

use std::collections::BTreeMap;

use crate::groups::{GroupEvent, GroupRegistry};
use crate::interest::Interest;
use crate::semantics::MatchPolicy;

/// One dynamically formed interest group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// The group key under the active matching policy (normalized interest
    /// or synonym-class representative).
    pub key: String,
    /// A human-readable label (the first display form seen).
    pub label: String,
    /// Member names, always including the local user, in name order.
    pub members: Vec<String>,
}

impl Group {
    /// Whether `member` is in the group.
    pub fn contains(&self, member: &str) -> bool {
        self.members.iter().any(|m| m == member)
    }
}

/// The result of one run of the Figure 6 algorithm: groups keyed by
/// canonical interest.
pub type GroupSet = BTreeMap<String, Group>;

/// The dynamic group discovery entry point: the Figure 6 algorithm bound to
/// the local member name and a [`MatchPolicy`].
///
/// Borrow-built per run (both fields are references), so recomputing after
/// every neighborhood change costs nothing beyond the algorithm itself:
///
/// ```
/// use ph_community::discovery::Discovery;
/// use ph_community::interest::Interest;
/// use ph_community::semantics::MatchPolicy;
///
/// let policy = MatchPolicy::Exact;
/// let own = [Interest::new("football")];
/// let neighbors = vec![("bob".to_owned(), vec![Interest::new("Football")])];
/// let groups = Discovery::new("me", &policy).groups(&own, &neighbors);
/// assert_eq!(groups["football"].members, vec!["bob", "me"]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Discovery<'a> {
    me: &'a str,
    policy: &'a MatchPolicy,
}

impl<'a> Discovery<'a> {
    /// Binds the algorithm to the local member `me` under `policy`.
    pub fn new(me: &'a str, policy: &'a MatchPolicy) -> Self {
        Discovery { me, policy }
    }

    /// Runs dynamic group discovery against the currently known `neighbors`
    /// (`(member name, their interests)` pairs — radio encounters and
    /// gossip-learned members alike).
    ///
    /// A group forms for each of the user's own interests that at least one
    /// neighbor shares (under the policy); the group contains the local
    /// user plus every matching neighbor. This is exactly the per-interest
    /// loop of Figure 6 — neighbors' interests the local user does *not*
    /// hold form no group (the user can still join such groups manually at
    /// the [`crate::groups::GroupRegistry`] level).
    pub fn groups(&self, own: &[Interest], neighbors: &[(String, Vec<Interest>)]) -> GroupSet {
        let mut groups = GroupSet::new();
        for interest in own {
            let key = self.policy.group_key(interest);
            for (name, their) in neighbors {
                let matches = their.iter().any(|t| self.policy.matches(interest, t));
                if matches {
                    let group = groups.entry(key.clone()).or_insert_with(|| Group {
                        key: key.clone(),
                        label: interest.display().to_owned(),
                        members: vec![self.me.to_owned()],
                    });
                    if !group.contains(name) {
                        group.members.push(name.clone());
                    }
                }
            }
        }
        for group in groups.values_mut() {
            group.members.sort();
            group.members.dedup();
        }
        groups
    }

    /// Runs [`Discovery::groups`] and feeds the fresh set through
    /// `registry`, returning the [`GroupEvent`]s the transition produced —
    /// the single path both local-encounter recomputes and gossip-delivered
    /// membership walk, so every caller sees the same event stream.
    pub fn update(
        &self,
        registry: &mut GroupRegistry,
        own: &[Interest],
        neighbors: &[(String, Vec<Interest>)],
    ) -> Vec<GroupEvent> {
        registry.update(self.groups(own, neighbors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interests(items: &[&str]) -> Vec<Interest> {
        items.iter().map(|s| Interest::new(*s)).collect()
    }

    fn neighbors(items: &[(&str, &[&str])]) -> Vec<(String, Vec<Interest>)> {
        items
            .iter()
            .map(|(n, is)| ((*n).to_owned(), interests(is)))
            .collect()
    }

    fn discover(
        me: &str,
        own: &[Interest],
        nbs: &[(String, Vec<Interest>)],
        policy: &MatchPolicy,
    ) -> GroupSet {
        Discovery::new(me, policy).groups(own, nbs)
    }

    #[test]
    fn no_neighbors_no_groups() {
        let g = discover("me", &interests(&["football"]), &[], &MatchPolicy::Exact);
        assert!(g.is_empty());
    }

    #[test]
    fn matching_interest_forms_group_with_both_members() {
        let g = discover(
            "me",
            &interests(&["Football"]),
            &neighbors(&[("bob", &["football", "chess"])]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g.len(), 1);
        let group = &g["football"];
        assert_eq!(group.members, vec!["bob", "me"]);
        assert_eq!(group.label, "Football");
    }

    #[test]
    fn unshared_neighbor_interests_form_no_group() {
        // Bob's chess interest doesn't concern me: per Figure 6, groups are
        // driven by the *active user's* interests.
        let g = discover(
            "me",
            &interests(&["football"]),
            &neighbors(&[("bob", &["chess"])]),
            &MatchPolicy::Exact,
        );
        assert!(g.is_empty());
    }

    #[test]
    fn each_own_interest_gets_its_own_group() {
        let g = discover(
            "me",
            &interests(&["football", "chess", "sauna"]),
            &neighbors(&[
                ("bob", &["football", "sauna"]),
                ("carol", &["chess"]),
                ("dave", &["football"]),
            ]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g["football"].members, vec!["bob", "dave", "me"]);
        assert_eq!(g["chess"].members, vec!["carol", "me"]);
        assert_eq!(g["sauna"].members, vec!["bob", "me"]);
    }

    #[test]
    fn exact_policy_fragments_synonyms_like_the_thesis_describes() {
        // The §5.2.6 limitation: biking and cycling end up apart.
        let g = discover(
            "me",
            &interests(&["biking"]),
            &neighbors(&[("bob", &["cycling"])]),
            &MatchPolicy::Exact,
        );
        assert!(g.is_empty(), "exact matching must not merge synonyms");
    }

    #[test]
    fn semantic_policy_merges_taught_synonyms() {
        let mut policy = MatchPolicy::Exact;
        policy.teach(&Interest::new("biking"), &Interest::new("cycling"));
        let g = discover(
            "me",
            &interests(&["biking"]),
            &neighbors(&[("bob", &["cycling"]), ("carol", &["Biking"])]),
            &policy,
        );
        assert_eq!(g.len(), 1);
        let group = &g["biking"];
        assert_eq!(group.members, vec!["bob", "carol", "me"]);
    }

    #[test]
    fn duplicate_neighbor_interests_do_not_duplicate_members() {
        let g = discover(
            "me",
            &interests(&["a"]),
            &neighbors(&[("bob", &["a", "A", " a "])]),
            &MatchPolicy::Exact,
        );
        assert_eq!(g["a"].members, vec!["bob", "me"]);
    }

    #[test]
    fn algorithm_is_deterministic_in_member_order() {
        let n = neighbors(&[("zed", &["x"]), ("ann", &["x"])]);
        let g = discover("me", &interests(&["x"]), &n, &MatchPolicy::Exact);
        assert_eq!(g["x"].members, vec!["ann", "me", "zed"]);
    }

    #[test]
    fn update_returns_events_through_the_registry() {
        let policy = MatchPolicy::Exact;
        let discovery = Discovery::new("me", &policy);
        let own = interests(&["football"]);
        let mut registry = GroupRegistry::new("me");
        let events = discovery.update(&mut registry, &own, &neighbors(&[("bob", &["football"])]));
        assert!(matches!(
            events.as_slice(),
            [GroupEvent::GroupFormed { key, .. }] if key == "football"
        ));
        let events = discovery.update(
            &mut registry,
            &own,
            &neighbors(&[("bob", &["football"]), ("carol", &["football"])]),
        );
        assert!(matches!(
            events.as_slice(),
            [GroupEvent::MemberJoined { member, .. }] if member == "carol"
        ));
        let events = discovery.update(&mut registry, &own, &[]);
        assert!(matches!(
            events.as_slice(),
            [GroupEvent::GroupDissolved { .. }]
        ));
    }
}
