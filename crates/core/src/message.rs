//! Member-to-member mail messages (Figure 17, `PS_MSG`).
//!
//! The reference application lets users "send and receive messages from
//! friends, and posses a friendly interface to read incoming messages,
//! compose new message and view sent messages" (§5.2.6). Messages are
//! written straight into the receiving device's inbox file by its server.

use codec::{decode_seq, encode_seq, DecodeError, Wire};
use std::fmt;
use std::sync::Arc;

use netsim::SimTime;

/// One mail message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MailMessage {
    /// Sender member name (interned — the same correspondents recur across
    /// a mailbox, so entries share one allocation per name).
    pub from: Arc<str>,
    /// Receiver member name (interned like `from`).
    pub to: Arc<str>,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// When it was written into the mailbox.
    pub at: SimTime,
}

impl fmt::Display for MailMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} -> {}] {}: {}",
            self.from, self.to, self.subject, self.body
        )
    }
}

/// A member's inbox and sent-messages folder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mailbox {
    inbox: Vec<MailMessage>,
    sent: Vec<MailMessage>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Writes a received message into the inbox (the server side of
    /// `PS_MSG`).
    pub fn deliver(&mut self, message: MailMessage) {
        self.inbox.push(message);
    }

    /// Records a message this member sent.
    pub fn record_sent(&mut self, message: MailMessage) {
        self.sent.push(message);
    }

    /// Received messages, oldest first.
    pub fn inbox(&self) -> &[MailMessage] {
        &self.inbox
    }

    /// Sent messages, oldest first.
    pub fn sent(&self) -> &[MailMessage] {
        &self.sent
    }

    /// Number of received messages.
    pub fn unread_count(&self) -> usize {
        self.inbox.len()
    }
}

impl Wire for MailMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.from.encode_to(out);
        self.to.encode_to(out);
        self.subject.encode_to(out);
        self.body.encode_to(out);
        self.at.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(MailMessage {
            from: Arc::<str>::decode(input)?,
            to: Arc::<str>::decode(input)?,
            subject: String::decode(input)?,
            body: String::decode(input)?,
            at: SimTime::decode(input)?,
        })
    }
}

impl Wire for Mailbox {
    fn encode_to(&self, out: &mut Vec<u8>) {
        encode_seq(&self.inbox, out);
        encode_seq(&self.sent, out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Mailbox {
            inbox: decode_seq(input)?,
            sent: decode_seq(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: &str, to: &str) -> MailMessage {
        MailMessage {
            from: from.into(),
            to: to.into(),
            subject: "s".into(),
            body: "b".into(),
            at: SimTime::from_secs(1),
        }
    }

    #[test]
    fn deliver_and_sent_are_separate_folders() {
        let mut mb = Mailbox::new();
        mb.deliver(msg("alice", "me"));
        mb.record_sent(msg("me", "bob"));
        assert_eq!(mb.inbox().len(), 1);
        assert_eq!(mb.sent().len(), 1);
        assert_eq!(&*mb.inbox()[0].from, "alice");
        assert_eq!(&*mb.sent()[0].to, "bob");
        assert_eq!(mb.unread_count(), 1);
    }

    #[test]
    fn display_is_readable() {
        let m = msg("a", "b");
        assert_eq!(m.to_string(), "[a -> b] s: b");
    }

    #[test]
    fn wire_round_trip() {
        let mut mb = Mailbox::new();
        mb.deliver(msg("a", "b"));
        mb.record_sent(msg("b", "c"));
        assert_eq!(Mailbox::decode_exact(&mb.encode()).unwrap(), mb);
    }
}
