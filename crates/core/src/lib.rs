//! # ph-community — social networking on mobile environment, on top of PeerHood
//!
//! This crate is the primary contribution of the reproduced thesis
//! (*Social Networking on Mobile Environment on top of PeerHood*, LUT 2008):
//! a social-networking **middleware** for mobile ad-hoc environments. There
//! is no central server — each personal trusted device carries its user's
//! profile, and devices that come into radio range of each other form
//! interest groups **dynamically** (Figure 6 of the thesis).
//!
//! ## Layers
//!
//! * Domain model: [`profile`], [`interest`], [`message`], [`content`],
//!   [`store`] (accounts, login, trusted friends, shared content);
//! * Matching: [`semantics`] (synonym teaching — the thesis's named future
//!   work) and [`discovery`] (the dynamic group discovery algorithm);
//! * Wire protocol: [`protocol`] (the `PS_*` operations of Table 6) and
//!   [`server`] (request dispatch);
//! * The application: [`node::CommunityApp`], a PeerHood
//!   [`Application`](peerhood::Application) combining client and server,
//!   runnable under the deterministic simulator or the live TCP driver.
//!
//! ## Example: two users meet and a group forms
//!
//! ```rust
//! use ph_community::node::CommunityApp;
//! use ph_community::profile::Profile;
//! use peerhood::sim::Cluster;
//! use netsim::world::NodeBuilder;
//! use netsim::geometry::Point2;
//! use netsim::SimTime;
//!
//! let mut cluster = Cluster::new(7);
//! let a = cluster.add_node(
//!     NodeBuilder::new("alice-phone").at(Point2::new(0.0, 0.0)),
//!     CommunityApp::with_member("alice", "pw", Profile::new("Alice").with_interests(["football"])),
//! );
//! let _b = cluster.add_node(
//!     NodeBuilder::new("bob-phone").at(Point2::new(4.0, 0.0)),
//!     CommunityApp::with_member("bob", "pw", Profile::new("Bob").with_interests(["Football", "chess"])),
//! );
//! cluster.start();
//! cluster.run_until(SimTime::from_secs(30));
//! let groups = cluster.app(a).groups();
//! assert_eq!(groups.len(), 1);
//! assert_eq!(groups[0].members, vec!["alice".to_string(), "bob".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod discovery;
pub mod epidemic;
pub mod error;
pub mod groups;
pub mod interest;
pub mod intern;
pub mod journal;
pub mod message;
pub mod node;
pub mod profile;
pub mod protocol;
pub mod semantics;
pub mod server;
pub mod store;

pub use discovery::{Discovery, Group, GroupSet};
pub use epidemic::{BlobDelivery, GossipContent, GossipNews, GossipRuntime};
pub use error::CommunityError;
pub use groups::{GroupEvent, GroupRegistry};
pub use interest::{Interest, InterestSet};
pub use journal::{JournalPersist, StoreJournal};
pub use node::{CommunityApp, OpId, OpOutcome, OpResult, RetryPolicy, SharedOutcome, SERVICE_NAME};
pub use profile::{Profile, ProfileView};
pub use protocol::{Request, Response};
pub use semantics::{MatchPolicy, SynonymTable};
pub use server::{handle_request, handle_request_cached, ReplayCache};
pub use store::MemberStore;
