//! Member profiles: the data a user creates on their own PTD.
//!
//! In social networking on top of PeerHood there is no central database —
//! "users creates their profile on their PTD" (§5.1). A [`Profile`] carries
//! free-form descriptive fields, the interest list that drives dynamic group
//! discovery, comments left by other members (Figure 14) and the visitor log
//! the server appends to when a profile is viewed (Figure 13).

use codec::{decode_seq, encode_seq, DecodeError, Wire};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use netsim::SimTime;

use crate::interest::{Interest, InterestSet};

/// A comment another member left on a profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// The commenting member's name. Shared (`Arc<str>`) because the same
    /// few authors recur across many comments; the server interns these.
    pub author: Arc<str>,
    /// The comment text.
    pub text: String,
    /// When it was written (server clock).
    pub at: SimTime,
}

impl fmt::Display for Comment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.author, self.text)
    }
}

/// A record of someone viewing this profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Visit {
    /// The visiting member's name. Shared (`Arc<str>`) — visitor logs are
    /// dominated by repeat visitors, so entries share one allocation.
    pub visitor: Arc<str>,
    /// When they viewed the profile.
    pub at: SimTime,
}

/// One profile of a member (the application supports multiple profiles per
/// account — Table 7: *Support for Multiple Profiles*).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Display name shown to other members.
    pub display_name: String,
    /// Free-form descriptive fields ("city" → "Lappeenranta", …), in key
    /// order.
    pub fields: BTreeMap<String, String>,
    /// The interests used for dynamic group discovery.
    pub interests: InterestSet,
    /// Comments left by other members, oldest first.
    pub comments: Vec<Comment>,
    /// Who has viewed this profile, oldest first.
    pub visitors: Vec<Visit>,
}

impl Profile {
    /// Creates a profile with a display name and no other data.
    pub fn new(display_name: impl Into<String>) -> Self {
        Profile {
            display_name: display_name.into(),
            ..Profile::default()
        }
    }

    /// Sets a descriptive field (builder style).
    pub fn with_field(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Adds interests (builder style).
    pub fn with_interests<I>(mut self, interests: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Interest>,
    {
        for i in interests {
            self.interests.add(i.into());
        }
        self
    }

    /// Appends a comment (called by the server for
    /// `PS_ADDPROFILECOMMENT`).
    pub fn add_comment(
        &mut self,
        author: impl Into<Arc<str>>,
        text: impl Into<String>,
        at: SimTime,
    ) {
        self.comments.push(Comment {
            author: author.into(),
            text: text.into(),
            at,
        });
    }

    /// Records a profile view (called by the server for `PS_GETPROFILE`;
    /// Figure 13's "write profile visitor" step).
    pub fn record_visit(&mut self, visitor: impl Into<Arc<str>>, at: SimTime) {
        self.visitors.push(Visit {
            visitor: visitor.into(),
            at,
        });
    }
}

/// The profile data sent over the wire in answer to `PS_GETPROFILE`
/// (Figure 13: profile information, interest list, trusted friends and
/// profile comments travel together).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileView {
    /// The member's login name (their unique id in the neighborhood).
    pub member: String,
    /// Their display name.
    pub display_name: String,
    /// Descriptive fields.
    pub fields: BTreeMap<String, String>,
    /// Interests (display forms).
    pub interests: Vec<String>,
    /// Trusted friends' member names.
    pub trusted: Vec<String>,
    /// Comments as `"author: text"` lines.
    pub comments: Vec<String>,
}

impl Wire for Comment {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.author.encode_to(out);
        self.text.encode_to(out);
        self.at.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Comment {
            author: Arc::<str>::decode(input)?,
            text: String::decode(input)?,
            at: SimTime::decode(input)?,
        })
    }
}

impl Wire for Visit {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.visitor.encode_to(out);
        self.at.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Visit {
            visitor: Arc::<str>::decode(input)?,
            at: SimTime::decode(input)?,
        })
    }
}

impl Wire for Profile {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.display_name.encode_to(out);
        self.fields.encode_to(out);
        self.interests.encode_to(out);
        encode_seq(&self.comments, out);
        encode_seq(&self.visitors, out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Profile {
            display_name: String::decode(input)?,
            fields: Wire::decode(input)?,
            interests: InterestSet::decode(input)?,
            comments: decode_seq(input)?,
            visitors: decode_seq(input)?,
        })
    }
}

impl Wire for ProfileView {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.member.encode_to(out);
        self.display_name.encode_to(out);
        self.fields.encode_to(out);
        self.interests.encode_to(out);
        self.trusted.encode_to(out);
        self.comments.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ProfileView {
            member: String::decode(input)?,
            display_name: String::decode(input)?,
            fields: Wire::decode(input)?,
            interests: Vec::<String>::decode(input)?,
            trusted: Vec::<String>::decode(input)?,
            comments: Vec::<String>::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_profile() {
        let p = Profile::new("Bishal")
            .with_field("city", "Lappeenranta")
            .with_interests(["Football", "Mobile P2P"]);
        assert_eq!(p.display_name, "Bishal");
        assert_eq!(p.fields["city"], "Lappeenranta");
        assert_eq!(p.interests.len(), 2);
    }

    #[test]
    fn comments_accumulate_in_order() {
        let mut p = Profile::new("x");
        p.add_comment("alice", "hi", SimTime::from_secs(1));
        p.add_comment("bob", "yo", SimTime::from_secs(2));
        assert_eq!(p.comments.len(), 2);
        assert_eq!(p.comments[0].to_string(), "alice: hi");
        assert!(p.comments[0].at < p.comments[1].at);
    }

    #[test]
    fn visits_are_recorded() {
        let mut p = Profile::new("x");
        p.record_visit("carol", SimTime::from_secs(5));
        assert_eq!(&*p.visitors[0].visitor, "carol");
    }

    #[test]
    fn profile_wire_round_trip() {
        let mut p = Profile::new("n")
            .with_field("city", "Lappeenranta")
            .with_interests(["chess"]);
        p.add_comment("a", "b", SimTime::from_secs(1));
        p.record_visit("c", SimTime::from_secs(2));
        assert_eq!(Profile::decode_exact(&p.encode()).unwrap(), p);
    }

    #[test]
    fn profile_view_wire_round_trip() {
        let v = ProfileView {
            member: "bob".into(),
            display_name: "Bob".into(),
            fields: [("city".to_owned(), "Lpr".to_owned())]
                .into_iter()
                .collect(),
            interests: vec!["Chess".into()],
            trusted: vec!["alice".into()],
            comments: vec!["alice: hi".into()],
        };
        assert_eq!(ProfileView::decode_exact(&v.encode()).unwrap(), v);
    }
}
