//! A hand-rolled benchmark harness with a Criterion-compatible surface.
//!
//! The workspace is hermetic (see `DESIGN.md`, "zero-dependency policy"), so
//! the `benches/` files run on this small in-repo timer instead of
//! `criterion`. The API mirrors the subset of Criterion they use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`criterion_group!`] /
//! [`criterion_main!`] — so a bench file only changes its `use` line.
//!
//! # Methodology
//!
//! Each benchmark is warmed up for [`WARMUP`] (timing discarded), then runs
//! [`BenchmarkGroup::sample_size`] samples. A sample executes a fixed batch
//! of iterations (sized during warmup so one batch takes roughly
//! [`TARGET_BATCH`]) and records the mean per-iteration time. The report
//! prints the min / median / p90 of the per-sample means, plus derived
//! throughput when [`Throughput`] was declared.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Warm-up budget per benchmark before any sample is recorded.
pub const WARMUP: Duration = Duration::from_millis(300);

/// Target wall-clock duration of one sample batch.
pub const TARGET_BATCH: Duration = Duration::from_millis(5);

/// Default number of recorded samples per benchmark.
pub const DEFAULT_SAMPLE_SIZE: usize = 50;

/// The top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }
}

/// How much work one iteration processes, for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark name (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Builds an id carrying a function name and a parameter value
    /// (mirrors `criterion::BenchmarkId::new`).
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (the setup cost of a batch
/// is excluded from timing either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; one input per iteration.
    SmallInput,
    /// Larger inputs; also one input per iteration here.
    LargeInput,
}

/// A group of related benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of recorded samples (min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}

    fn report(&self, bench: &str, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        if sorted.is_empty() {
            println!("{}/{bench}: no samples", self.name);
            return;
        }
        let min = sorted[0];
        let p50 = sorted[sorted.len() / 2];
        let p90 = sorted[(sorted.len() * 9 / 10).min(sorted.len() - 1)];
        let mut line = format!(
            "{}/{bench}  time: [min {} · p50 {} · p90 {}]",
            self.name,
            fmt_duration(min),
            fmt_duration(p50),
            fmt_duration(p90),
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / p50.as_secs_f64().max(f64::MIN_POSITIVE);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  thrpt: {:.1} MiB/s",
                        per_sec(n) / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }
}

/// Times closures for one benchmark (mirrors `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of each recorded sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let batch = calibrate(|| {
            black_box(routine());
        });
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed() / (batch as u32)
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        // Setup runs outside the timed section, so batches are single
        // iterations and calibration only bounds the warm-up.
        let mut warmup_left = WARMUP;
        while warmup_left > Duration::ZERO {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warmup_left = warmup_left.saturating_sub(start.elapsed().max(Duration::from_nanos(1)));
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }
}

/// Warm-up: run `routine` for [`WARMUP`], then derive a batch size that makes
/// one sample take about [`TARGET_BATCH`].
fn calibrate(mut routine: impl FnMut()) -> u64 {
    let warmup_start = Instant::now();
    let mut iters: u64 = 0;
    while warmup_start.elapsed() < WARMUP {
        routine();
        iters += 1;
    }
    let per_iter = warmup_start.elapsed() / (iters.max(1) as u32);
    let batch = TARGET_BATCH.as_nanos() / per_iter.as_nanos().max(1);
    batch.clamp(1, 1_000_000) as u64
}

/// Human-readable duration with an SI-style unit.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(64));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    v.push(4);
                    v
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_displays_parameter() {
        assert_eq!(BenchmarkId::from_parameter(40).to_string(), "40");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
