//! Criterion benchmark crate; see the `benches/` directory. The library target is intentionally empty.
