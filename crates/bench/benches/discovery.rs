//! Bench: the dynamic group discovery algorithm (Figure 6) as pure
//! computation — matching cost vs neighborhood size and interest count.

use ph_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use community::discovery::Discovery;
use community::semantics::MatchPolicy;
use community::Interest;

fn make_neighbors(n: usize, interests_each: usize) -> Vec<(String, Vec<Interest>)> {
    (0..n)
        .map(|i| {
            let interests = (0..interests_each)
                .map(|j| Interest::new(format!("interest-{}", (i + j) % (interests_each * 2))))
                .collect();
            (format!("member{i}"), interests)
        })
        .collect()
}

fn bench_neighbor_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_neighbors");
    let own: Vec<Interest> = (0..8)
        .map(|j| Interest::new(format!("interest-{j}")))
        .collect();
    for n in [4usize, 16, 64, 256] {
        let neighbors = make_neighbors(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &neighbors, |b, nb| {
            b.iter(|| Discovery::new("me", &MatchPolicy::Exact).groups(&own, nb))
        });
    }
    group.finish();
}

fn bench_interest_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_interests");
    for k in [2usize, 8, 32] {
        let own: Vec<Interest> = (0..k)
            .map(|j| Interest::new(format!("interest-{j}")))
            .collect();
        let neighbors = make_neighbors(32, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &neighbors, |b, nb| {
            b.iter(|| Discovery::new("me", &MatchPolicy::Exact).groups(&own, nb))
        });
    }
    group.finish();
}

fn bench_semantic_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_policy");
    let own: Vec<Interest> = (0..8)
        .map(|j| Interest::new(format!("interest-{j}")))
        .collect();
    let neighbors = make_neighbors(64, 8);
    group.bench_function("exact", |b| {
        b.iter(|| Discovery::new("me", &MatchPolicy::Exact).groups(&own, &neighbors))
    });
    let mut taught = MatchPolicy::Exact;
    for j in 0..8 {
        taught.teach(
            &Interest::new(format!("interest-{j}")),
            &Interest::new(format!("synonym-{j}")),
        );
    }
    group.bench_function("semantic", |b| {
        b.iter(|| Discovery::new("me", &taught).groups(&own, &neighbors))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbor_scaling,
    bench_interest_scaling,
    bench_semantic_vs_exact
);
criterion_main!(benches);
