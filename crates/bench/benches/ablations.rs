//! Bench: the ablation experiments (A1–A5). Each bench runs one reduced
//! configuration per iteration; the full sweeps print once at the end.

use ph_bench::{criterion_group, criterion_main, Criterion};

use harness::ablations;

fn bench_discovery_tech(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tech");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("one_round_all_techs", |b| {
        b.iter(|| {
            seed += 1;
            ablations::discovery_by_technology(1, seed)
        })
    });
    group.finish();
}

fn bench_semantics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_semantics");
    let mut seed = 0u64;
    group.bench_function("members40_families5_spellings4", |b| {
        b.iter(|| {
            seed += 1;
            ablations::semantics(40, 5, 4, seed)
        })
    });
    group.finish();
}

fn bench_handover(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_handover");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("one_trial_on_off", |b| {
        b.iter(|| {
            seed += 1;
            ablations::handover(1, seed)
        })
    });
    group.finish();
}

fn print_sweeps(_c: &mut Criterion) {
    println!(
        "\n{}",
        ablations::render_discovery_by_technology(&ablations::discovery_by_technology(5, 2008))
    );
    println!(
        "{}",
        ablations::render_scaling(&ablations::scaling(&[1, 2, 4], 2, 2008))
    );
    let rows: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|sp| ablations::semantics(40, 5, sp, 2008))
        .collect();
    println!("{}", ablations::render_semantics(&rows));
    println!(
        "{}",
        ablations::render_handover(&ablations::handover(4, 2008))
    );
    println!(
        "{}",
        ablations::render_churn(&[ablations::churn(6, 5, 2008)])
    );
}

criterion_group!(
    benches,
    bench_discovery_tech,
    bench_semantics,
    bench_handover,
    print_sweeps
);
criterion_main!(benches);
