//! Bench: the hierarchical timing wheel vs the `BinaryHeap` it replaced.
//!
//! Two workloads, both with the `(at, seq)` tie-break the simulator relies
//! on: a bulk load-then-drain (the crowd start burst) and steady-state
//! churn (pop one wake, schedule the next — the daemon cadence). The heap
//! reference is implemented inline so the comparison survives the heap's
//! removal from the simulator proper.

use ph_bench::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netsim::{SimRng, SimTime, TimerWheel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The scheduler the wheel replaced: a binary heap keyed on `(at, seq)`.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
}

impl HeapQueue {
    fn schedule(&mut self, at: SimTime, event: u32) {
        self.heap.push(Reverse((at, self.seq, event)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
    }
}

/// Deterministic wake times spanning all wheel levels: mostly near-future
/// (daemon cadence), a tail of far-future timers (long timeouts).
fn wake_offsets(n: usize) -> Vec<SimTime> {
    let mut rng = SimRng::from_seed(2008);
    (0..n)
        .map(|_| {
            let micros = if rng.chance(0.125) {
                rng.range_u64(0..600_000_000) // up to 10 simulated minutes out
            } else {
                rng.range_u64(0..2_000_000) // within the next 2 seconds
            };
            SimTime::from_micros(micros)
        })
        .collect()
}

fn bench_bulk_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_bulk_drain");
    let n = 10_000usize;
    let offsets = wake_offsets(n);
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::from_parameter("wheel"), |b| {
        b.iter_batched(
            || {
                let mut w = TimerWheel::with_capacity(n);
                for (i, &at) in offsets.iter().enumerate() {
                    w.schedule(at, i as u32);
                }
                w
            },
            |mut w| {
                let mut last = 0u64;
                while let Some((at, _)) = w.pop() {
                    last = at.as_micros();
                }
                last
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function(BenchmarkId::from_parameter("binary_heap"), |b| {
        b.iter_batched(
            || {
                let mut q = HeapQueue::default();
                for (i, &at) in offsets.iter().enumerate() {
                    q.schedule(at, i as u32);
                }
                q
            },
            |mut q| {
                let mut last = 0u64;
                while let Some((at, _)) = q.pop() {
                    last = at.as_micros();
                }
                last
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_churn");
    group.throughput(Throughput::Elements(1));
    let pending = 1024usize;

    let mut w = TimerWheel::with_capacity(pending);
    for (i, &at) in wake_offsets(pending).iter().enumerate() {
        w.schedule(at, i as u32);
    }
    group.bench_function(BenchmarkId::from_parameter("wheel"), |b| {
        b.iter(|| {
            let (at, ev) = w.pop().expect("queue never drains");
            w.schedule(at + std::time::Duration::from_secs(5), ev);
            at
        })
    });

    let mut q = HeapQueue::default();
    for (i, &at) in wake_offsets(pending).iter().enumerate() {
        q.schedule(at, i as u32);
    }
    group.bench_function(BenchmarkId::from_parameter("binary_heap"), |b| {
        b.iter(|| {
            let (at, ev) = q.pop().expect("queue never drains");
            q.schedule(at + std::time::Duration::from_secs(5), ev);
            at
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bulk_drain, bench_churn);
criterion_main!(benches);
