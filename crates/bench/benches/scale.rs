//! Bench: the scale pass — spatial-indexed neighbor queries vs the naive
//! all-pairs scan, interned vs string-keyed trace recording, and whole
//! crowd runs, swept over crowd sizes 30 → 1000.

use ph_bench::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use harness::crowd::{build, CrowdConfig, CrowdScenario};
use netsim::{SimTime, Trace};

const SIZES: [usize; 4] = [30, 100, 300, 1000];

fn crowd_world(nodes: usize) -> CrowdScenario {
    build(&CrowdConfig {
        nodes,
        seed: 2008,
        ..CrowdConfig::default()
    })
    .expect("valid bench config")
}

/// Per-node `neighbors_any` over the whole crowd, through the uniform
/// grid — near-linear in N at constant density.
fn bench_neighbors_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_neighbors_grid");
    for n in SIZES {
        let mut s = crowd_world(n);
        let t = SimTime::from_secs(30);
        let ids: Vec<_> = s.cluster.world_mut().node_ids().collect();
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ids, |b, ids| {
            b.iter(|| {
                let world = s.cluster.world_mut();
                let mut total = 0usize;
                for &id in ids {
                    total += world.neighbors_any(id, t).len();
                }
                total
            })
        });
    }
    group.finish();
}

/// The same sweep through the naive all-pairs scan — quadratic in N, the
/// baseline the grid is measured against.
fn bench_neighbors_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_neighbors_naive");
    for n in SIZES {
        let mut s = crowd_world(n);
        let t = SimTime::from_secs(30);
        let ids: Vec<_> = s.cluster.world_mut().node_ids().collect();
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ids, |b, ids| {
            b.iter(|| {
                let world = s.cluster.world_mut();
                let mut total = 0usize;
                for &id in ids {
                    total += world.neighbors_any_naive(id, t).len();
                }
                total
            })
        });
    }
    group.finish();
}

/// Recording into a full bounded ring: the interned handle path (the
/// middleware hot path — zero allocations) vs the string-keyed
/// convenience path (two hash lookups per record).
fn bench_trace_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_trace_record");
    group.throughput(Throughput::Elements(1));

    let mut trace = Trace::with_capacity(4096);
    let a = trace.intern_actor("alice");
    let b_id = trace.intern_actor("bob");
    let label = trace.intern_label("MSG");
    for i in 0..8192u64 {
        trace.record_ids(SimTime::from_micros(i), a, b_id, label);
    }
    let mut at = 8192u64;
    group.bench_function("interned", |b| {
        b.iter(|| {
            at += 1;
            trace.record_ids(SimTime::from_micros(at), a, b_id, label);
        })
    });

    let mut trace = Trace::with_capacity(4096);
    trace.record(SimTime::ZERO, "alice", "bob", "MSG");
    let mut at = 0u64;
    group.bench_function("strings", |b| {
        b.iter(|| {
            at += 1;
            trace.record(SimTime::from_micros(at), "alice", "bob", "MSG");
        })
    });
    group.finish();
}

/// A whole crowd run (build excluded): discovery, mobility, bounded
/// tracing — the end-to-end cost `repro crowd` reports.
fn bench_crowd_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_crowd_run");
    for n in [30usize, 100, 300] {
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || crowd_world(n),
                |mut s| {
                    s.cluster.run_until(SimTime::from_secs(30));
                    s
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbors_grid,
    bench_neighbors_naive,
    bench_trace_record,
    bench_crowd_run
);
criterion_main!(benches);
