//! Bench: the MSC figures (7, 11–17) — each figure's full scenario run,
//! from cluster boot to completed operation. Regenerates the charts once
//! at the end of the run.

use ph_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use harness::msc::{self, MscOp};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("msc_figures");
    group.sample_size(10);
    for op in MscOp::ALL {
        let mut seed = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("fig{}", op.figure())),
            &op,
            |b, &op| {
                b.iter(|| {
                    seed += 1;
                    let run = msc::run(op, seed);
                    assert!(run.conforms, "figure {} must conform", op.figure());
                    run.trace.len()
                })
            },
        );
    }
    group.finish();
}

fn print_figures(_c: &mut Criterion) {
    for op in MscOp::ALL {
        println!("\n{}", msc::run(op, 2008).render());
    }
}

criterion_group!(benches, bench_figures, print_figures);
criterion_main!(benches);
