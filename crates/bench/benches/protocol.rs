//! Bench: the PeerHood Community wire codec (Table 6 messages).

use ph_bench::{criterion_group, criterion_main, Criterion, Throughput};

use community::{ProfileView, Request, Response};

fn sample_profile() -> ProfileView {
    ProfileView {
        member: "bob".into(),
        display_name: "Bob the Builder".into(),
        fields: [("city", "Lappeenranta"), ("dept", "IT")]
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect(),
        interests: (0..12).map(|i| format!("interest number {i}")).collect(),
        trusted: (0..8).map(|i| format!("friend{i}")).collect(),
        comments: (0..20)
            .map(|i| format!("member{i}: this is profile comment number {i}"))
            .collect(),
    }
}

fn bench_requests(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_request");
    let req = Request::GetProfile {
        member: "bob".into(),
        requester: "alice".into(),
    };
    let frame = req.encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_get_profile", |b| b.iter(|| req.encode()));
    group.bench_function("decode_get_profile", |b| {
        b.iter(|| Request::decode(&frame).expect("valid frame"))
    });
    group.finish();
}

fn bench_responses(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_response");
    let resp = Response::Profile(sample_profile());
    let frame = resp.encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_profile", |b| b.iter(|| resp.encode()));
    group.bench_function("decode_profile", |b| {
        b.iter(|| Response::decode(&frame).expect("valid frame"))
    });

    let content = Response::Content {
        name: "song.mp3".into(),
        data: vec![0xAB; 64 * 1024].into(),
    };
    let frame = content.encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_content_64k", |b| b.iter(|| content.encode()));
    group.bench_function("decode_content_64k", |b| {
        b.iter(|| Response::decode(&frame).expect("valid frame"))
    });
    group.finish();
}

criterion_group!(benches, bench_requests, bench_responses);
criterion_main!(benches);
