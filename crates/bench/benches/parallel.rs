//! Bench: the deterministic parallel epoch engine vs the serial scheduler.
//!
//! Runs the same crowd scenario with `threads: 1` (pure serial) and with
//! one worker per hardware thread, and asserts the trace digests match —
//! the engine's whole contract is "same bits, less wall-clock". On a
//! single-core host the parallel arm measures pure fork/join overhead;
//! the speedup claim only applies at ≥4 hardware threads.

use ph_bench::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use harness::crowd::{build, run, CrowdConfig};
use netsim::par::available_threads;
use netsim::SimTime;

fn config(nodes: usize, threads: usize) -> CrowdConfig {
    CrowdConfig {
        nodes,
        seed: 2008,
        threads,
        compare_naive: false,
        ..CrowdConfig::default()
    }
}

fn bench_crowd_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_crowd_run");
    let auto = available_threads();
    for nodes in [300usize, 1000] {
        // The digest contract, checked once per size before timing.
        let serial = run(&config(nodes, 1)).expect("valid bench config");
        let parallel = run(&config(nodes, auto.max(2))).expect("valid bench config");
        assert_eq!(
            serial.digest, parallel.digest,
            "parallel run diverged from serial at {nodes} nodes"
        );

        for (label, threads) in [("serial", 1usize), ("threads_auto", 0)] {
            group.sample_size(10);
            group.bench_function(BenchmarkId::new(label, nodes), |b| {
                b.iter_batched(
                    || build(&config(nodes, threads)).expect("valid bench config"),
                    |mut s| {
                        s.cluster.run_until(SimTime::from_secs(30));
                        s
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_crowd_parallel);
criterion_main!(benches);
