//! Bench: Table 8 — one complete task sequence per arm.
//!
//! Each iteration runs a full Table 8 trial for one arm (all four tasks)
//! and returns its simulated total, so `cargo bench` both exercises the
//! pipeline end-to-end and regenerates the table's rows (printed once at
//! the end).

use ph_bench::{criterion_group, criterion_main, BatchSize, Criterion};

use netsim::SimRng;
use sns::{AccessDevice, CentralServer, SiteProfile, SnsSession};

fn seeded_site() -> CentralServer {
    let mut server = CentralServer::new();
    server.register("user1");
    server.register("member1");
    server.create_group("England Football");
    server.create_group("Chess Club");
    server.join_group("member1", "England Football");
    server
}

fn sns_trial(site: SiteProfile, device: AccessDevice, seed: u64) -> std::time::Duration {
    let mut server = seeded_site();
    let mut session = SnsSession::new(site, device, SimRng::from_seed(seed));
    let group = session
        .search_group(&mut server, "england football")
        .expect("group exists");
    session.join_group(&mut server, "user1", &group);
    session.view_member_list(&mut server, &group);
    session.view_member_profile(&mut server, "member1");
    session.elapsed()
}

fn bench_sns_arms(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_sns");
    group.sample_size(30);
    for (label, site, device) in [
        (
            "facebook_n810",
            SiteProfile::facebook(),
            AccessDevice::nokia_n810(),
        ),
        (
            "facebook_n95",
            SiteProfile::facebook(),
            AccessDevice::nokia_n95(),
        ),
        ("hi5_n810", SiteProfile::hi5(), AccessDevice::nokia_n810()),
        ("hi5_n95", SiteProfile::hi5(), AccessDevice::nokia_n95()),
    ] {
        let mut seed = 0u64;
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    (site.clone(), device.clone(), seed)
                },
                |(s, d, seed)| sns_trial(s, d, seed),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_peerhood_arm(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_peerhood");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("full_trial", |b| {
        b.iter(|| {
            seed += 1;
            // One PeerHood trial: group search + member list, the two
            // network-dominated tasks.
            let mut s = harness::lab(&harness::LabConfig {
                seed,
                peer_count: 3,
                ..harness::LabConfig::default()
            });
            let observer = s.observer;
            s.cluster
                .run_until_condition(netsim::SimTime::from_secs(120), |c| {
                    c.app(observer).first_group_at().is_some()
                })
                .expect("group forms");
            let op = s
                .cluster
                .with_app(observer, |app, ctx| app.get_member_list(ctx));
            let deadline = s.cluster.now() + std::time::Duration::from_secs(90);
            s.cluster
                .run_until_condition(deadline, |c| c.app(observer).outcome(op).is_some())
                .expect("op completes");
            s.cluster.app(observer).outcome(op).unwrap().duration()
        })
    });
    group.finish();
}

fn print_table(_c: &mut Criterion) {
    // Regenerate and print the actual table once per bench run.
    let report = harness::table8::run(10, 2008);
    println!("\n{}", report.render());
}

criterion_group!(benches, bench_sns_arms, bench_peerhood_arm, print_table);
criterion_main!(benches);
