//! Differential property test: the spatial-grid neighbor queries must be
//! *exactly* the naive all-pairs scan — same nodes, same order — for any
//! population, technology mix, mobility model and query time.

use codec::prop::{check, Config, Gen};
use ph_netsim::geometry::{Point2, Rect};
use ph_netsim::mobility::{RandomWalk, RandomWaypoint};
use ph_netsim::world::NodeBuilder;
use ph_netsim::{SimRng, SimTime, Technology, World};

/// One generated device: spawn point, radio mix, mobility choice.
#[derive(Debug)]
struct NodeSpec {
    x: f64,
    y: f64,
    /// Bit 0 = Bluetooth, bit 1 = WLAN, bit 2 = GPRS (0 = no radios).
    techs: u8,
    /// 0 = stationary, 1 = random waypoint, 2 = random walk.
    mobility: u8,
    seed: u64,
}

#[derive(Debug)]
struct Scenario {
    /// Campus side, metres. Small enough that cells interact, large
    /// enough to cross the 80 m cell size.
    side: f64,
    nodes: Vec<NodeSpec>,
    /// Query times, microseconds.
    times: Vec<u64>,
}

fn gen_scenario(g: &mut Gen) -> Scenario {
    let side = g.f64_in(10.0, 400.0);
    let nodes = g.vec_of(30, |g| NodeSpec {
        x: g.f64_in(0.0, side),
        y: g.f64_in(0.0, side),
        techs: g.u64(8) as u8,
        mobility: g.u64(3) as u8,
        seed: g.any_u64(),
    });
    let times = g.vec_of(4, |g| g.u64(120_000_000));
    Scenario { side, nodes, times }
}

fn build_world(s: &Scenario) -> World {
    let area = Rect::sized(s.side, s.side);
    let mut world = World::new();
    for (i, spec) in s.nodes.iter().enumerate() {
        let start = area.clamp(Point2::new(spec.x, spec.y));
        let mut techs = Vec::new();
        for (bit, tech) in Technology::ALL.iter().enumerate() {
            if spec.techs & (1 << bit) != 0 {
                techs.push(*tech);
            }
        }
        let builder = NodeBuilder::new(format!("n{i}")).with_technologies(techs);
        let builder = match spec.mobility {
            0 => builder.at(start),
            1 => builder.moving(RandomWaypoint::new(
                area,
                start,
                (0.5, 3.0),
                (
                    std::time::Duration::ZERO,
                    std::time::Duration::from_secs(10),
                ),
                SimRng::from_seed(spec.seed),
            )),
            _ => builder.moving(RandomWalk::new(
                area,
                start,
                2.0,
                std::time::Duration::from_secs(5),
                SimRng::from_seed(spec.seed),
            )),
        };
        world.add_node(builder);
    }
    world
}

#[test]
fn grid_neighbors_match_naive_exactly() {
    check(
        &Config::with_cases(96),
        "grid neighbors == naive neighbors",
        gen_scenario,
        |s| {
            let mut world = build_world(s);
            let ids: Vec<_> = world.node_ids().collect();
            for &at in &s.times {
                let t = SimTime::from_micros(at);
                for &id in &ids {
                    for tech in Technology::ALL {
                        assert_eq!(
                            world.neighbors(id, tech, t),
                            world.neighbors_naive(id, tech, t),
                            "neighbors({id:?}, {tech:?}, {t:?}) diverged"
                        );
                    }
                    assert_eq!(
                        world.neighbors_any(id, t),
                        world.neighbors_any_naive(id, t),
                        "neighbors_any({id:?}, {t:?}) diverged"
                    );
                }
            }
        },
    );
}

#[test]
fn grid_reachability_matches_naive_exactly() {
    check(
        &Config::with_cases(96),
        "grid reachable == naive reachable",
        gen_scenario,
        |s| {
            let mut world = build_world(s);
            let ids: Vec<_> = world.node_ids().collect();
            for &at in &s.times {
                let t = SimTime::from_micros(at);
                // Warm the epoch cache through a batched query so the
                // cached-position path is the one under test too.
                if let Some(&first) = ids.first() {
                    world.neighbors_any(first, t);
                }
                for &a in &ids {
                    for &b in &ids {
                        for tech in Technology::ALL {
                            assert_eq!(
                                world.reachable(a, b, tech, t),
                                world.reachable_naive(a, b, tech, t),
                                "reachable({a:?}, {b:?}, {tech:?}, {t:?}) diverged"
                            );
                        }
                    }
                }
            }
        },
    );
}
