//! Hierarchical timing wheel — the O(1)-amortized scheduler core.
//!
//! [`TimerWheel`] replaces a global binary heap for the common simulation
//! workload: most timers fire within seconds of being armed (inquiry scans,
//! frame arrivals, response offsets), while a long tail (periodic daemon
//! wakes far ahead, application timeouts) sits beyond the near horizon.
//!
//! # Layout
//!
//! Time is bucketed into *ticks* of `2^10` µs (≈1 ms). There are
//! [`LEVELS`] wheels of [`SLOTS`] slots each; level `l` spans
//! `SLOTS^(l+1)` ticks, so the whole structure covers
//! `64^4` ticks ≈ 4.7 h of simulated time. Timers beyond that live in an
//! *overflow* binary heap and are pulled into the wheels as the horizon
//! approaches them. A per-level `u64` occupancy bitmap lets the wheel jump
//! over empty slots in one `trailing_zeros` instruction instead of ticking
//! through them.
//!
//! A timer's level is the position of the highest bit in which its tick
//! differs from the wheel's `horizon` tick (the first not-yet-expired
//! tick). That rule — rather than a distance comparison — guarantees every
//! slot holds ticks from exactly one "rotation", and that cascading a slot
//! strictly demotes its timers to lower levels, so expiry terminates.
//!
//! # Ordering contract
//!
//! Expired timers are funnelled through a small *ready* heap ordered by
//! `(at, seq)` — identical to the tie-break of the old global heap — so the
//! pop stream is **bit-identical** to a `BinaryHeap` scheduler fed the same
//! schedule calls. `wheel_matches_reference_model` in this module and the
//! property tests in `tests/` enforce that equivalence.
//!
//! # Cancellation
//!
//! [`TimerWheel::schedule`] returns the timer's sequence number, usable as
//! a cancellation token. Cancellation is *lazy*: the entry stays in its
//! slot and is dropped when it surfaces, which keeps cancel O(log n) in the
//! number of outstanding cancellations rather than O(slot scan).

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::SimTime;

/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond their combined span timers overflow to a heap.
pub const LEVELS: usize = 4;
/// log2 of the level-0 tick length in microseconds (1024 µs ≈ 1 ms).
const TICK_BITS: u32 = 10;
/// Bit width of the wheel-covered tick range (`LEVELS * SLOT_BITS`).
const SPAN_BITS: u32 = LEVELS as u32 * SLOT_BITS;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Reversed comparison turns `BinaryHeap`'s max-heap into the `(at, seq)`
// min-heap the simulator needs. Only `(at, seq)` participate, so `E` needs
// no bounds.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A cancellation handle returned by [`TimerWheel::schedule`].
///
/// Tokens are never reused within one wheel: they are the timer's globally
/// unique sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

/// Hierarchical timing wheel ordered by `(at, seq)`.
///
/// See the [module docs](self) for the layout and the determinism contract.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// `levels[l][s]` holds timers whose tick maps to slot `s` of level `l`.
    levels: Vec<Vec<Vec<Entry<E>>>>,
    /// Per-level occupancy bitmap; bit `s` set ⇔ `levels[l][s]` non-empty.
    occupied: [u64; LEVELS],
    /// Timers beyond the wheel span, pulled in as the horizon approaches.
    overflow: BinaryHeap<Entry<E>>,
    /// Timers whose slot has been expired, in exact `(at, seq)` heap order.
    ready: BinaryHeap<Entry<E>>,
    /// First tick that has not been expired yet; every pending timer in the
    /// wheels or overflow has `tick >= horizon`, everything earlier is in
    /// `ready` (or already popped).
    horizon: u64,
    /// Next sequence number (insertion-order tie-break).
    seq: u64,
    /// Sequence numbers armed via [`TimerWheel::schedule_cancellable`] that
    /// are still pending — the only timers [`TimerWheel::cancel`] accepts.
    tracked: BTreeSet<u64>,
    /// Lazily-cancelled sequence numbers still physically in the structure.
    cancelled: BTreeSet<u64>,
    /// Number of live (scheduled, not popped, not cancelled) timers.
    live: usize,
}

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_micros() >> TICK_BITS
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: BinaryHeap::new(),
            horizon: 0,
            seq: 0,
            tracked: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            live: 0,
        }
    }

    /// Creates an empty wheel with `capacity` pre-reserved in the ready
    /// heap (the structure every popped timer passes through).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut w = Self::new();
        w.ready.reserve(capacity);
        w
    }

    /// Reserves space for `additional` more timers on the pop path.
    pub fn reserve(&mut self, additional: usize) {
        self.ready.reserve(additional);
    }

    /// Schedules `event` at absolute time `at`. `at` may be in the "past"
    /// relative to already-popped timers — ordering with respect to
    /// *pending* timers is still exact — so the caller (the event queue)
    /// owns the no-time-travel policy.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.live += 1;
        self.place(Entry { at, seq, event });
    }

    /// Like [`TimerWheel::schedule`], but returns a token accepted by
    /// [`TimerWheel::cancel`]. Slightly more expensive: the timer's
    /// sequence number is tracked until it fires or is cancelled.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerToken {
        let seq = self.seq;
        self.seq += 1;
        self.live += 1;
        self.tracked.insert(seq);
        self.place(Entry { at, seq, event });
        TimerToken(seq)
    }

    /// Cancels a pending timer. Returns `true` if the timer was still
    /// pending (it will never be popped), `false` if it already fired or
    /// was already cancelled. Lazy: the entry is dropped when its slot
    /// expires, not eagerly dug out of the wheel.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        if !self.tracked.remove(&token.0) {
            return false;
        }
        self.cancelled.insert(token.0);
        self.live -= 1;
        true
    }

    /// Number of live timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Timestamp of the earliest live timer, without popping it.
    ///
    /// Takes `&mut self` because it may expire slots into the ready heap
    /// (pure bookkeeping: the pop stream is unaffected).
    pub fn peek(&mut self) -> Option<SimTime> {
        loop {
            if let Some(top) = self.ready.peek() {
                if self.cancelled.remove(&top.seq) {
                    self.ready.pop();
                    continue;
                }
                return Some(top.at);
            }
            if !self.refill_ready() {
                return None;
            }
        }
    }

    /// Removes and returns the earliest live timer.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(entry) = self.ready.pop() {
                if self.cancelled.remove(&entry.seq) {
                    continue;
                }
                self.tracked.remove(&entry.seq);
                self.live -= 1;
                return Some((entry.at, entry.event));
            }
            if !self.refill_ready() {
                return None;
            }
        }
    }

    /// Drops every pending timer. The horizon and the sequence counter are
    /// kept, so ordering guarantees survive a clear.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in level.iter_mut() {
                slot.clear();
            }
        }
        self.occupied = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.tracked.clear();
        self.cancelled.clear();
        self.live = 0;
    }

    /// Inserts an entry into the structure it belongs to at the current
    /// horizon: the ready heap (tick already expired), a wheel slot, or the
    /// overflow heap (beyond the wheel span).
    fn place(&mut self, entry: Entry<E>) {
        let t = tick_of(entry.at);
        if t < self.horizon {
            self.ready.push(entry);
            return;
        }
        if (t >> SPAN_BITS) != (self.horizon >> SPAN_BITS) {
            self.overflow.push(entry);
            return;
        }
        let x = t ^ self.horizon;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((t >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Earliest occupied level-0 slot's tick, if any. Level-0 slots hold
    /// exactly one tick each, all within the horizon's 64-tick block.
    fn level0_candidate(&self) -> Option<u64> {
        if self.occupied[0] == 0 {
            return None;
        }
        let s = self.occupied[0].trailing_zeros() as u64;
        let block = self.horizon & !(SLOTS as u64 - 1);
        debug_assert!(s >= (self.horizon & (SLOTS as u64 - 1)));
        Some(block + s)
    }

    /// Earliest occupied higher-level slot as `(start_tick, level, slot)`,
    /// where `start_tick` is the first tick the slot can contain.
    fn cascade_candidate(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 1..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let s = self.occupied[level].trailing_zeros() as u64;
            let shift = level as u32 * SLOT_BITS;
            let p = self.horizon >> shift;
            debug_assert!(s >= (p & (SLOTS as u64 - 1)));
            let q = (p & !(SLOTS as u64 - 1)) + s;
            let start = q << shift;
            if best.is_none_or(|(b, _, _)| start < b) {
                best = Some((start, level, s as usize));
            }
        }
        best
    }

    /// Moves the next batch of timers into the ready heap. Returns `false`
    /// when nothing is pending anywhere.
    fn refill_ready(&mut self) -> bool {
        loop {
            // Pull overflow timers whose tick entered the wheel span.
            while let Some(top) = self.overflow.peek() {
                if (tick_of(top.at) >> SPAN_BITS) != (self.horizon >> SPAN_BITS) {
                    break;
                }
                let entry = self.overflow.pop().expect("peeked");
                self.place(entry);
            }

            let c0 = self.level0_candidate();
            let cascade = self.cascade_candidate();
            match (c0, cascade) {
                (None, None) => {
                    let Some(top) = self.overflow.peek() else {
                        return false;
                    };
                    // Jump the horizon to the overflow timer's span block so
                    // the pull above picks it up next iteration. Safe: the
                    // wheels are empty, so nothing is skipped.
                    self.horizon = tick_of(top.at) & !((1u64 << SPAN_BITS) - 1);
                }
                // A higher-level slot may contain ticks at or before the
                // earliest level-0 tick, so it must cascade first.
                (_, Some((start, level, slot))) if c0.is_none_or(|t| start <= t) => {
                    self.horizon = self.horizon.max(start);
                    self.occupied[level] &= !(1 << slot);
                    let entries = std::mem::take(&mut self.levels[level][slot]);
                    for entry in entries {
                        // Every timer here shares the slot's tick prefix, so
                        // re-placing against the advanced horizon strictly
                        // demotes it (see module docs) — the loop terminates.
                        self.place(entry);
                    }
                }
                (Some(t0), _) => {
                    let slot = (t0 & (SLOTS as u64 - 1)) as usize;
                    self.occupied[0] &= !(1 << slot);
                    let entries = std::mem::take(&mut self.levels[0][slot]);
                    for entry in entries {
                        debug_assert_eq!(tick_of(entry.at), t0);
                        self.ready.push(entry);
                    }
                    self.horizon = t0 + 1;
                    return true;
                }
                (None, Some(_)) => unreachable!("guarded by the cascade arm"),
            }
        }
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_secs(3), 'c');
        w.schedule(SimTime::from_micros(1), 'a');
        w.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order_across_structures() {
        let mut w = TimerWheel::new();
        // Same microsecond, interleaved with a far timer that goes to a
        // higher level and an overflow timer, to cross slot boundaries.
        let t = SimTime::from_millis(500);
        w.schedule(SimTime::from_secs(30_000), 999); // overflow
        for i in 0..50 {
            w.schedule(t, i);
        }
        let mut order = Vec::new();
        while let Some((at, e)) = w.pop() {
            if at == t {
                order.push(e);
            }
        }
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_tick_different_micros_sorted() {
        // Two events inside the same 1024 µs tick must still pop in `at`
        // order even when scheduled in reverse.
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_micros(900), 'b');
        w.schedule(SimTime::from_micros(100), 'a');
        assert_eq!(w.pop().unwrap(), (SimTime::from_micros(100), 'a'));
        assert_eq!(w.pop().unwrap(), (SimTime::from_micros(900), 'b'));
    }

    #[test]
    fn cancellation_is_exact() {
        let mut w = TimerWheel::new();
        let a = w.schedule_cancellable(SimTime::from_millis(10), 'a');
        let b = w.schedule_cancellable(SimTime::from_millis(20), 'b');
        let c = w.schedule_cancellable(SimTime::from_secs(20_000), 'c'); // overflow
        assert_eq!(w.len(), 3);
        assert!(w.cancel(b));
        assert!(!w.cancel(b), "double-cancel must report false");
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek(), Some(SimTime::from_millis(10)));
        assert_eq!(w.pop().unwrap().1, 'a');
        assert!(!w.cancel(a), "fired timer cannot be cancelled");
        assert!(w.cancel(c));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_timers_come_back() {
        let mut w = TimerWheel::new();
        // Far beyond the 4.7 h wheel span.
        let far = SimTime::from_secs(100_000);
        w.schedule(far, "far");
        w.schedule(SimTime::from_secs(1), "near");
        assert_eq!(w.pop().unwrap(), (SimTime::from_secs(1), "near"));
        assert_eq!(w.peek(), Some(far));
        assert_eq!(w.pop().unwrap(), (far, "far"));
    }

    #[test]
    fn schedule_while_draining_current_tick() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(5);
        w.schedule(t, 0);
        assert_eq!(w.pop().unwrap(), (t, 0));
        // Same timestamp, scheduled after the first fired: must still pop,
        // and after any pending earlier-seq timers at that time.
        w.schedule(t, 1);
        w.schedule(t, 2);
        assert_eq!(w.pop().unwrap(), (t, 1));
        assert_eq!(w.pop().unwrap(), (t, 2));
    }

    #[test]
    fn wheel_matches_reference_model() {
        // Differential check against a sort-based model across a random
        // workload mixing near, far, overflow, ties and cancellations.
        let mut rng = SimRng::from_seed(0x77AEE1);
        for _round in 0..20 {
            let mut w = TimerWheel::new();
            let mut model: Vec<(u64, u64, u32)> = Vec::new(); // (at µs, seq, id)
            let mut tokens = Vec::new();
            let mut clock = 0u64;
            let mut next_id = 0u32;
            for _op in 0..400 {
                match rng.range_u64(0..10) {
                    // Mostly schedules, at a spread of horizons.
                    0..=5 => {
                        let delta = match rng.range_u64(0..4) {
                            0 => rng.range_u64(0..2_000),             // same/near tick
                            1 => rng.range_u64(0..5_000_000),         // seconds
                            2 => rng.range_u64(0..600_000_000),       // minutes
                            _ => rng.range_u64(0..40_000_000_000u64), // overflow range
                        };
                        let at = clock + delta;
                        let tok = w.schedule_cancellable(SimTime::from_micros(at), next_id);
                        model.push((at, tok.0, next_id));
                        tokens.push(tok);
                        next_id += 1;
                    }
                    6 => {
                        if let Some(i) =
                            (!tokens.is_empty()).then(|| rng.range_usize(0..tokens.len()))
                        {
                            let tok = tokens.swap_remove(i);
                            let in_model = model.iter().any(|&(_, s, _)| s == tok.0);
                            assert_eq!(w.cancel(tok), in_model);
                            model.retain(|&(_, s, _)| s != tok.0);
                        }
                    }
                    _ => {
                        model.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
                        let expect = (!model.is_empty()).then(|| model.remove(0));
                        let got = w.pop();
                        assert_eq!(
                            got,
                            expect.map(|(at, _, id)| (SimTime::from_micros(at), id))
                        );
                        if let Some((at, _, _)) = expect {
                            clock = at;
                        }
                        assert_eq!(w.len(), model.len());
                    }
                }
            }
            // Drain: the full remaining stream must match.
            model.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
            let drained: Vec<(SimTime, u32)> = std::iter::from_fn(|| w.pop()).collect();
            let expected: Vec<(SimTime, u32)> = model
                .iter()
                .map(|&(at, _, id)| (SimTime::from_micros(at), id))
                .collect();
            assert_eq!(drained, expected);
        }
    }
}
