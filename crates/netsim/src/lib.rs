//! # ph-netsim — deterministic simulator of a mobile wireless environment
//!
//! This crate is the lowest substrate of the PeerHood Social reproduction. It
//! models the *mobile environment* of the thesis: personal trusted devices
//! moving through 2-D space, equipped with some subset of the three wireless
//! technologies PeerHood supports (Bluetooth, WLAN, GPRS), discovering each
//! other and exchanging frames with technology-realistic latencies.
//!
//! The simulator is a classic discrete-event design:
//!
//! * [`SimTime`] is a virtual clock (microsecond resolution);
//! * [`EventQueue`] orders arbitrary user events by time, with a tie-breaking
//!   sequence number so that execution is fully deterministic;
//! * [`World`] tracks node positions via pluggable [`mobility`] models and
//!   answers range/reachability queries per [`Technology`];
//! * [`SimRng`] is a seeded, forkable random source so that every run with the
//!   same seed produces bit-identical results.
//!
//! The crate deliberately knows nothing about PeerHood or social networking:
//! upper layers (the `ph-peerhood` middleware driver) translate their protocol
//! actions into world queries and scheduled events.
//!
//! ## Example
//!
//! ```rust
//! use ph_netsim::{World, NodeBuilder, Technology, SimTime, geometry::Point2};
//!
//! let mut world = World::new();
//! let a = world.add_node(NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)));
//! let b = world.add_node(NodeBuilder::new("bob").at(Point2::new(5.0, 0.0)));
//! let t = SimTime::ZERO;
//! assert!(world.reachable(a, b, Technology::Bluetooth, t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod geometry;
pub mod mobility;
pub mod par;
pub mod radio;
pub mod region;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;
pub mod world;

pub use event::{EventQueue, TimerToken};
pub use fault::{BurstState, CrashWindow, FaultPlan, FaultProfile};
pub use radio::{RadioEnv, TechSet, Technology, TechnologyProfile};
pub use region::RegionLanes;
pub use rng::SimRng;
pub use time::SimTime;
pub use trace::{ActorId, LabelId, Trace, TraceEvent, TraceStats};
pub use wheel::TimerWheel;
pub use world::{EpochView, NodeBuilder, NodeId, World};
