//! Region-sharded event lanes with a deterministic serial merge.
//!
//! The region-ownership engine shards the world into radio-cell regions and
//! gives each region its own [`TimerWheel`] lane. Events are routed to the
//! lane owning their target region; lanes pop independently and the merge
//! reconstructs the exact global `(time, sequence)` order a single shared
//! wheel would have produced.
//!
//! The trick that makes lane routing *unobservable* is the payload-embedded
//! **global sequence number**: every [`RegionLanes::schedule`] call stamps the
//! event with a counter that is global across lanes, so same-timestamp events
//! from different lanes can be re-interleaved exactly. As a consequence the
//! pop stream — and therefore every trace digest downstream — is bit-identical
//! for *any* lane count and *any* region-to-lane mapping. That invariant is
//! pinned by differential tests against [`EventQueue`] in this module and by
//! the crowd digest selfchecks in the harness.
//!
//! Boundary handoff falls out of the same design: when a node crosses from
//! one region to another, newly scheduled events simply route to the new
//! owner lane, while events still resident in the old lane stay valid — their
//! global sequence number, not their lane, decides where they land in the
//! merged stream.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Maps a region coordinate to a lane index in `0..lane_count`.
///
/// Pure FNV-1a over the coordinate bytes, so the mapping is stable across
/// runs and platforms. The mapping never affects the pop order (see module
/// docs) — it only spreads scheduling work across lanes.
///
/// # Panics
///
/// Panics if `lane_count` is zero.
pub fn lane_for(region: (i64, i64), lane_count: usize) -> usize {
    assert!(lane_count > 0, "lane_for requires at least one lane");
    let mut h = FNV_OFFSET;
    for b in region
        .0
        .to_le_bytes()
        .into_iter()
        .chain(region.1.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % lane_count as u64) as usize
}

/// A time-ordered event queue sharded into per-region timer-wheel lanes.
///
/// Drop-in replacement for [`EventQueue`] in engines that route events by
/// region: same clock semantics (popping advances [`RegionLanes::now`],
/// scheduling in the past panics), same `(time, insertion-order)` pop
/// contract — except the insertion order is tracked *globally* across lanes,
/// so the observable stream is independent of how events are routed.
///
/// # Example
///
/// ```rust
/// use ph_netsim::region::RegionLanes;
/// use ph_netsim::SimTime;
///
/// let mut q = RegionLanes::new(4);
/// q.schedule(1, SimTime::from_secs(2), "beta");
/// q.schedule(3, SimTime::from_secs(1), "alpha");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "alpha")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "beta")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct RegionLanes<E> {
    lanes: Vec<TimerWheel<(u64, E)>>,
    /// Min-heap of `(time, lane)` candidates. Lazily revalidated: every
    /// scheduled event pushes its exact `(at, lane)` entry, and entries are
    /// discarded when the lane's head no longer matches.
    heads: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Fully merged batch for the timestamp currently being delivered.
    staged: VecDeque<(u64, E)>,
    staged_at: SimTime,
    /// Scratch for merging one timestamp across lanes.
    merge_buf: Vec<(u64, E)>,
    seq: u64,
    now: SimTime,
    len: usize,
}

impl<E> RegionLanes<E> {
    /// Creates an empty queue with `lane_count` lanes (minimum 1) and the
    /// clock at [`SimTime::ZERO`].
    pub fn new(lane_count: usize) -> Self {
        Self::with_capacity(lane_count, 0)
    }

    /// Like [`RegionLanes::new`], but sizes each lane for roughly
    /// `capacity / lane_count` in-flight events.
    pub fn with_capacity(lane_count: usize, capacity: usize) -> Self {
        let lanes = lane_count.max(1);
        let per_lane = capacity / lanes;
        RegionLanes {
            lanes: (0..lanes)
                .map(|_| TimerWheel::with_capacity(per_lane))
                .collect(),
            heads: BinaryHeap::new(),
            staged: VecDeque::new(),
            staged_at: SimTime::ZERO,
            merge_buf: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            len: 0,
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane owning `region` under this queue's lane count.
    pub fn route(&self, region: (i64, i64)) -> usize {
        lane_for(region, self.lanes.len())
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` on `lane` to fire at absolute time `at`.
    ///
    /// The lane only decides which wheel stores the event; the global
    /// sequence number stamped here decides its position among
    /// same-timestamp events in the pop stream.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`RegionLanes::now`] or `lane` is out
    /// of range.
    pub fn schedule(&mut self, lane: usize, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let gseq = self.seq;
        self.seq += 1;
        self.lanes[lane].schedule(at, (gseq, event));
        self.heads.push(Reverse((at, lane as u32)));
        self.len += 1;
    }

    /// Schedules `event` on `lane` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, lane: usize, delay: Duration, event: E) {
        self.schedule(lane, self.now + delay, event);
    }

    /// Discards stale head entries until the top of `heads` matches a live
    /// lane head (or the heap is empty). Afterwards, the heap top — if any —
    /// is the earliest pending timestamp across all lanes.
    fn settle(&mut self) {
        while let Some(&Reverse((t, lane))) = self.heads.peek() {
            match self.lanes[lane as usize].peek() {
                // Exact match: this entry's event is still the lane head.
                Some(actual) if actual == t => return,
                // The event that pushed this entry was already popped
                // (actual > t) or the lane drained entirely. An earlier
                // live head would sit above us in the heap, so discarding
                // is safe.
                _ => {
                    self.heads.pop();
                }
            }
        }
    }

    /// Merges every event at the earliest pending timestamp into `staged`,
    /// ordered by global sequence number. No-op if `staged` is non-empty or
    /// nothing is pending.
    fn stage_next(&mut self) {
        if !self.staged.is_empty() {
            return;
        }
        self.settle();
        let Some(&Reverse((t, _))) = self.heads.peek() else {
            return;
        };
        // Pop every head entry at `t`. Each corresponds 1:1 to a pending
        // event at exactly `t` in its lane (entries are pushed per event and
        // only invalidated by pops, which cannot have happened at the
        // current minimum), so popping one lane event per entry drains the
        // timestamp completely.
        self.merge_buf.clear();
        while let Some(&Reverse((et, lane))) = self.heads.peek() {
            if et != t {
                break;
            }
            self.heads.pop();
            let (at, payload) = self.lanes[lane as usize]
                .pop()
                .expect("head entry without a lane event");
            debug_assert_eq!(at, t, "lane head diverged from its heap entry");
            self.merge_buf.push(payload);
        }
        self.merge_buf.sort_unstable_by_key(|&(gseq, _)| gseq);
        self.staged.extend(self.merge_buf.drain(..));
        self.staged_at = t;
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock is left
    /// where it was).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.stage_next();
        let (_, event) = self.staged.pop_front()?;
        self.now = self.staged_at;
        self.len -= 1;
        Some((self.staged_at, event))
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because lanes may rotate wheel slots internally;
    /// the observable pop stream is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.staged.is_empty() {
            return Some(self.staged_at);
        }
        self.settle();
        self.heads.peek().map(|&Reverse((t, _))| t)
    }

    /// Pops the entire batch of events sharing the earliest pending
    /// timestamp, provided it is at or before `deadline`, into `out`
    /// (cleared first, capacity reused). Returns that timestamp, or `None`
    /// if nothing is due.
    ///
    /// Same contract as [`EventQueue::drain_batch`]: events scheduled *at
    /// the returned timestamp* while the caller processes the batch land in
    /// a later batch at the same timestamp, because their global sequence
    /// numbers are larger.
    pub fn drain_batch(&mut self, deadline: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        self.stage_next();
        if self.staged.is_empty() || self.staged_at > deadline {
            return None;
        }
        self.now = self.staged_at;
        self.len -= self.staged.len();
        out.extend(self.staged.drain(..).map(|(_, e)| e));
        Some(self.staged_at)
    }

    /// Advances the clock to `t` without popping anything. Moving backwards
    /// is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if an event earlier than `t` is still pending.
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        if let Some(first) = self.peek_time() {
            assert!(
                first >= t,
                "cannot advance past pending event at {first:?} to {t:?}"
            );
        }
        self.now = t;
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.heads.clear();
        self.staged.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::SimRng;

    #[test]
    fn lane_for_is_stable_and_in_range() {
        for lanes in [1usize, 2, 7, 64] {
            for x in -3i64..3 {
                for y in -3i64..3 {
                    let l = lane_for((x, y), lanes);
                    assert!(l < lanes);
                    assert_eq!(l, lane_for((x, y), lanes));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn lane_for_zero_lanes_panics() {
        let _ = lane_for((0, 0), 0);
    }

    /// The core tentpole invariant: for a workload with heavy timestamp
    /// collisions, the pop stream matches a single serial [`EventQueue`]
    /// bit-for-bit regardless of lane count or routing.
    #[test]
    fn pop_stream_matches_serial_queue_for_any_lane_count() {
        for lane_count in [1usize, 2, 3, 7, 16, 64] {
            let mut rng = SimRng::from_seed(2008 + lane_count as u64);
            let mut serial = EventQueue::new();
            let mut sharded = RegionLanes::new(lane_count);
            for i in 0..2000u32 {
                // Few distinct timestamps → many same-time ties to merge.
                let at = SimTime::from_micros(rng.range_u64(0..40) * 1000);
                let region = (rng.range_u64(0..10) as i64, rng.range_u64(0..10) as i64);
                serial.schedule(at, i);
                let lane = sharded.route(region);
                sharded.schedule(lane, at, i);
            }
            assert_eq!(serial.len(), sharded.len());
            loop {
                let a = serial.pop();
                let b = sharded.pop();
                assert_eq!(a, b, "diverged with {lane_count} lanes");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(serial.now(), sharded.now());
        }
    }

    /// Re-scheduling while draining — the feedback pattern the simulator
    /// actually uses — must also be lane-invariant, including events
    /// scheduled at the timestamp currently being delivered.
    #[test]
    fn feedback_scheduling_matches_serial_queue() {
        for lane_count in [1usize, 3, 8] {
            let mut rng_s = SimRng::from_seed(77);
            let mut rng_p = SimRng::from_seed(77);
            let mut serial = EventQueue::new();
            let mut sharded = RegionLanes::new(lane_count);
            for i in 0..50u32 {
                let at = SimTime::from_micros(u64::from(i % 5) * 500);
                serial.schedule(at, i);
                sharded.schedule(i as usize % lane_count, at, i);
            }
            let mut order_s = Vec::new();
            let mut order_p = Vec::new();
            let mut spawned_s = 1000u32;
            let mut spawned_p = 1000u32;
            while let Some((t, e)) = serial.pop() {
                order_s.push((t, e));
                if e < 200 && rng_s.chance(0.4) {
                    // Sometimes at the same timestamp, sometimes later.
                    let delay = rng_s.range_u64(0..3) * 500;
                    serial.schedule(t + Duration::from_micros(delay), spawned_s);
                    spawned_s += 1;
                }
            }
            while let Some((t, e)) = sharded.pop() {
                order_p.push((t, e));
                if e < 200 && rng_p.chance(0.4) {
                    let delay = rng_p.range_u64(0..3) * 500;
                    let lane = (e as usize).wrapping_mul(31) % lane_count;
                    sharded.schedule(lane, t + Duration::from_micros(delay), spawned_p);
                    spawned_p += 1;
                }
            }
            assert_eq!(order_s, order_p, "diverged with {lane_count} lanes");
        }
    }

    #[test]
    fn drain_batch_matches_event_queue_contract() {
        let mut q = RegionLanes::new(4);
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.schedule(0, t1, 'a');
        q.schedule(3, t2, 'x');
        q.schedule(2, t1, 'b');
        let mut batch = Vec::new();
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t1));
        assert_eq!(batch, vec!['a', 'b']);
        assert_eq!(q.now(), t1);
        // Scheduled at the drained timestamp → next batch, same timestamp.
        q.schedule(1, t1, 'c');
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t1));
        assert_eq!(batch, vec!['c']);
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t2));
        assert_eq!(batch, vec!['x']);
        q.schedule(0, SimTime::from_secs(10), 'z');
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), None);
        assert!(batch.is_empty());
        assert_eq!(q.len(), 1);
    }

    /// Lookahead-safety property: a drained batch is a *closed set*.
    /// Whatever a handler schedules while the batch executes — even at the
    /// very timestamp being drained — lands in a strictly later batch, so
    /// an epoch worker can never observe an event spawned by a
    /// concurrently-executing lane of its own window. The batched stream
    /// must still equal the serial single-pop stream with identical
    /// feedback.
    #[test]
    fn drained_batches_never_admit_feedback_from_their_own_window() {
        // Deterministic feedback: every third event spawns a child, half of
        // them at the *same* timestamp the parent was delivered at.
        let child_delay = |id: u32| id.is_multiple_of(3).then(|| u64::from(id % 2) * 250);
        for lane_count in [1usize, 3, 8, 32] {
            let mut rng = SimRng::from_seed(9000 + lane_count as u64);
            let mut sharded = RegionLanes::new(lane_count);
            let mut serial = EventQueue::new();
            for id in 0..300u32 {
                let at = SimTime::from_micros(rng.range_u64(0..15) * 250);
                let lane = rng.range_u64(0..lane_count as u64) as usize;
                sharded.schedule(lane, at, id);
                serial.schedule(at, id);
            }
            let deadline = SimTime::from_secs(60);
            let mut batch = Vec::new();
            let mut batch_order = Vec::new();
            let mut born_in_batch = std::collections::HashMap::new();
            let mut spawn_id = 10_000u32;
            let mut batch_idx = 0usize;
            let mut last_t = SimTime::ZERO;
            while let Some(t) = sharded.drain_batch(deadline, &mut batch) {
                assert!(
                    t >= last_t,
                    "batch time went backwards (lanes={lane_count})"
                );
                last_t = t;
                for &id in &batch {
                    if let Some(&born) = born_in_batch.get(&id) {
                        assert!(
                            born < batch_idx,
                            "event {id} delivered inside the window that spawned it \
                             (lanes={lane_count}, batch={batch_idx})"
                        );
                    }
                    batch_order.push((t, id));
                    if let Some(d) = child_delay(id) {
                        let lane = (id as usize).wrapping_mul(31) % lane_count;
                        sharded.schedule(lane, t + Duration::from_micros(d), spawn_id);
                        born_in_batch.insert(spawn_id, batch_idx);
                        spawn_id += 1;
                    }
                }
                batch_idx += 1;
            }
            let mut serial_order = Vec::new();
            let mut spawn_id = 10_000u32;
            while let Some((t, id)) = serial.pop() {
                serial_order.push((t, id));
                if let Some(d) = child_delay(id) {
                    serial.schedule(t + Duration::from_micros(d), spawn_id);
                    spawn_id += 1;
                }
            }
            assert_eq!(batch_order, serial_order, "lanes={lane_count}");
        }
    }

    #[test]
    fn mixed_pop_and_drain_batch_agree_with_serial() {
        let mut serial = EventQueue::new();
        let mut sharded = RegionLanes::new(5);
        for i in 0..300u32 {
            let at = SimTime::from_micros(u64::from(i % 9) * 250);
            serial.schedule(at, i);
            sharded.schedule(i as usize % 5, at, i);
        }
        let deadline = SimTime::from_secs(1);
        let mut bs = Vec::new();
        let mut bp = Vec::new();
        loop {
            let ts = serial.drain_batch(deadline, &mut bs);
            let tp = sharded.drain_batch(deadline, &mut bp);
            assert_eq!(ts, tp);
            assert_eq!(bs, bp);
            if ts.is_none() {
                break;
            }
            // Interleave a single pop between batches when possible.
            assert_eq!(serial.pop(), sharded.pop());
        }
        serial.advance_to(deadline);
        sharded.advance_to(deadline);
        assert_eq!(serial.now(), sharded.now());
    }

    #[test]
    fn advance_to_moves_forward_only() {
        let mut q: RegionLanes<()> = RegionLanes::new(2);
        q.advance_to(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        q.advance_to(SimTime::from_secs(1));
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot advance past pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = RegionLanes::new(2);
        q.schedule(1, SimTime::from_secs(2), ());
        q.advance_to(SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = RegionLanes::new(2);
        q.schedule(0, SimTime::from_secs(10), ());
        q.pop();
        q.schedule(1, SimTime::from_secs(1), ());
    }

    #[test]
    fn clear_empties_every_lane_and_staged_batch() {
        let mut q = RegionLanes::new(3);
        q.schedule(0, SimTime::from_secs(1), 1u32);
        q.schedule(1, SimTime::from_secs(1), 2u32);
        q.schedule(2, SimTime::from_secs(2), 3u32);
        // Stage the first batch, then clear with one event mid-delivery.
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }
}
