//! The simulated world: nodes, their radios, and range queries.
//!
//! [`World`] is the authoritative map from [`NodeId`] to position (via each
//! node's mobility model) and radio equipment. It answers the questions a
//! middleware driver needs: *who is in range of whom, over which technology,
//! at what time, and how long would this frame take to deliver?*
//!
//! Range queries are served from a uniform-grid spatial index built lazily
//! once per distinct query time (an *epoch*): node positions are sampled
//! from the mobility models once, bucketed into cells the size of the
//! largest finite radio range, and `neighbors`/`neighbors_any`/`reachable`
//! then only inspect the cells a technology's range can touch. GPRS is
//! range-independent, so it is answered from a per-technology membership
//! list instead of the grid. The pre-index all-pairs implementations are
//! kept as `*_naive` methods for differential testing.
//!
//! The world itself has no event loop; drivers combine it with an
//! [`EventQueue`](crate::EventQueue).

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use crate::geometry::Point2;
use crate::mobility::{Mobility, Stationary};
use crate::radio::{RadioEnv, Technology};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifier of a node in a [`World`]. Dense and copyable; assigned in
/// insertion order starting from zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs from a raw index (for deserialization and tests).
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Configuration for one node, consumed by [`World::add_node`].
///
/// # Example
///
/// ```rust
/// use ph_netsim::{World, NodeBuilder, Technology};
/// use ph_netsim::geometry::Point2;
///
/// let mut world = World::new();
/// let id = world.add_node(
///     NodeBuilder::new("alice")
///         .at(Point2::new(1.0, 2.0))
///         .with_technologies([Technology::Bluetooth, Technology::Wlan]),
/// );
/// assert_eq!(world.name(id), "alice");
/// ```
#[derive(Debug)]
pub struct NodeBuilder {
    name: String,
    mobility: Box<dyn Mobility>,
    technologies: Vec<Technology>,
}

impl NodeBuilder {
    /// Starts building a node named `name`, stationary at the origin, with
    /// all three technologies enabled.
    pub fn new(name: impl Into<String>) -> Self {
        NodeBuilder {
            name: name.into(),
            mobility: Box::new(Stationary::new(Point2::ORIGIN)),
            technologies: Technology::ALL.to_vec(),
        }
    }

    /// Places the node stationary at `p`.
    pub fn at(mut self, p: Point2) -> Self {
        self.mobility = Box::new(Stationary::new(p));
        self
    }

    /// Uses a custom mobility model.
    pub fn moving(mut self, mobility: impl Mobility + 'static) -> Self {
        self.mobility = Box::new(mobility);
        self
    }

    /// Restricts the node's radios to `technologies`.
    pub fn with_technologies(mut self, technologies: impl IntoIterator<Item = Technology>) -> Self {
        self.technologies = technologies.into_iter().collect();
        self.technologies.sort();
        self.technologies.dedup();
        self
    }
}

#[derive(Debug)]
struct WorldNode {
    name: String,
    mobility: Box<dyn Mobility>,
    technologies: Vec<Technology>,
}

/// Grid cell edge in metres: the largest *finite* technology range (WLAN's
/// 80 m), so any finite-range disc is covered by a small constant number of
/// cells.
const CELL_M: f64 = 80.0;

/// Per-epoch position cache plus uniform-grid bucketing of node positions.
#[derive(Debug, Default)]
struct SpatialIndex {
    /// The time for which `positions`/`cells` are valid; `None` when stale.
    epoch: Option<SimTime>,
    /// Cached position of every node at `epoch`, indexed by node index.
    positions: Vec<Point2>,
    /// Node indices bucketed by grid cell; each bucket is ascending because
    /// nodes are inserted in index order.
    cells: HashMap<(i64, i64), Vec<u32>>,
    /// Scratch buffer reused across queries to gather candidates.
    scratch: Vec<u32>,
}

fn cell_of(p: Point2) -> (i64, i64) {
    ((p.x / CELL_M).floor() as i64, (p.y / CELL_M).floor() as i64)
}

impl SpatialIndex {
    /// Collects (into `self.scratch`) the indices of all nodes in cells that
    /// a disc of radius `r` around `p` could touch.
    fn gather(&mut self, p: Point2, r: f64) {
        self.scratch.clear();
        let (cx0, cy0) = cell_of(Point2::new(p.x - r, p.y - r));
        let (cx1, cy1) = cell_of(Point2::new(p.x + r, p.y + r));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    self.scratch.extend_from_slice(bucket);
                }
            }
        }
        self.scratch.sort_unstable();
    }
}

/// The collection of simulated devices and the physics between them.
#[derive(Debug, Default)]
pub struct World {
    nodes: Vec<WorldNode>,
    /// Node indices carrying each technology, in [`Technology::ALL`] order;
    /// ascending by construction. Serves infinite-range (GPRS) queries.
    tech_members: [Vec<u32>; 3],
    /// Per-node radio bitmask (bit = [`tech_slot`]); lets range queries and
    /// the lock-free [`EpochView`] test technologies without touching the
    /// (non-`Sync`) mobility boxes.
    tech_mask: Vec<u8>,
    index: SpatialIndex,
    /// Times covered by [`World::prefetch_epochs`]; column `k` of every
    /// `prefetch_rows` entry holds the node's position at `prefetch_times[k]`.
    prefetch_times: Vec<SimTime>,
    /// Per-node prefetched positions (one row per node, reused between
    /// prefetch rounds so the steady state allocates nothing).
    prefetch_rows: Vec<Vec<Point2>>,
    /// Radio environment: per-technology profiles and the fault plan.
    env: RadioEnv,
}

fn tech_slot(tech: Technology) -> usize {
    match tech {
        Technology::Bluetooth => 0,
        Technology::Wlan => 1,
        Technology::Gprs => 2,
    }
}

fn tech_bit(tech: Technology) -> u8 {
    1 << tech_slot(tech)
}

impl World {
    /// Creates an empty world with the default [`RadioEnv`] (the built-in
    /// 2008-calibrated profiles, no faults).
    pub fn new() -> Self {
        World::default()
    }

    /// Creates an empty world with a custom radio environment.
    pub fn with_env(env: RadioEnv) -> Self {
        World {
            env,
            ..World::default()
        }
    }

    /// The radio environment this world runs under.
    pub fn env(&self) -> &RadioEnv {
        &self.env
    }

    /// Adds a node, returning its identifier.
    pub fn add_node(&mut self, builder: NodeBuilder) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut mask = 0u8;
        for &tech in &builder.technologies {
            self.tech_members[tech_slot(tech)].push(id.0);
            mask |= tech_bit(tech);
        }
        self.tech_mask.push(mask);
        self.nodes.push(WorldNode {
            name: builder.name,
            mobility: builder.mobility,
            technologies: builder.technologies,
        });
        // Positions cached for the previous population are stale.
        self.index.epoch = None;
        self.prefetch_times.clear();
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The node's configured name.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this world.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// The technologies the node is equipped with.
    pub fn technologies(&self, id: NodeId) -> &[Technology] {
        &self.nodes[id.index()].technologies
    }

    /// Whether the node carries a radio for `tech`.
    pub fn has_technology(&self, id: NodeId, tech: Technology) -> bool {
        self.tech_mask[id.index()] & tech_bit(tech) != 0
    }

    /// Samples every node's position at `t` and rebuilds the grid, unless
    /// the cache is already valid for `t`. This is the "positions computed
    /// once per time-step" guarantee: any number of range queries at the
    /// same `t` share one mobility evaluation per node.
    fn ensure_epoch(&mut self, t: SimTime) {
        self.prepare_epoch(t, 1);
    }

    /// Like the serial epoch build, but fans the mobility sampling — the
    /// O(N) part — across `threads` scoped workers (0 = auto). Positions
    /// are pure functions of `(seed, t)` (the [`Mobility`] contract), and
    /// each model is visited by exactly one worker, so the resulting cache
    /// is bit-identical to a serial build; the grid bucketing stays serial
    /// in node-id order. No-op when the cache is already valid for `t`.
    pub fn prepare_epoch(&mut self, t: SimTime, threads: usize) {
        if self.index.epoch == Some(t) {
            return;
        }
        let n = self.nodes.len();
        self.index.positions.clear();
        self.index.positions.resize(n, Point2::ORIGIN);
        if let Some(k) = self.prefetch_times.iter().position(|&pt| pt == t) {
            // Column `k` was sampled ahead of time by `prefetch_epochs`;
            // gathering it is O(N) copies, no mobility evaluation at all.
            for (slot, row) in self.index.positions.iter_mut().zip(&self.prefetch_rows) {
                *slot = row[k];
            }
        } else {
            crate::par::zip_for_each_mut(
                &mut self.nodes,
                &mut self.index.positions,
                threads,
                |_, node, slot| *slot = node.mobility.position(t),
            );
        }
        for cells in self.index.cells.values_mut() {
            cells.clear();
        }
        for (i, p) in self.index.positions.iter().enumerate() {
            self.index
                .cells
                .entry(cell_of(*p))
                .or_default()
                .push(i as u32);
        }
        self.index.cells.retain(|_, v| !v.is_empty());
        self.index.epoch = Some(t);
    }

    /// Samples every node's position at each of `times` in one fork/join
    /// pass, fanned across `threads` scoped workers (0 = auto). Each worker
    /// owns a contiguous node range and walks it through *all* the times,
    /// so one spawn round is amortized over `times.len()` future epochs —
    /// the piece that makes the parallel engine profitable even though a
    /// single epoch's sampling is microseconds of work.
    ///
    /// [`World::prepare_epoch`] consumes the snapshot columns by simple
    /// gather. Positions are pure functions of `(seed, t)` (the
    /// [`Mobility`](crate::mobility::Mobility) contract), so prefetching a
    /// time that is never queried — or re-sampling one that is — cannot
    /// change any observable result. Adding a node invalidates the
    /// prefetched columns.
    pub fn prefetch_epochs(&mut self, times: &[SimTime], threads: usize) {
        self.prefetch_rows.resize_with(self.nodes.len(), Vec::new);
        crate::par::zip_for_each_mut(
            &mut self.nodes,
            &mut self.prefetch_rows,
            threads,
            |_, node, row| {
                row.clear();
                row.extend(times.iter().map(|&pt| node.mobility.position(pt)));
            },
        );
        self.prefetch_times.clear();
        self.prefetch_times.extend_from_slice(times);
    }

    /// Whether a prefetched position snapshot for `t` is available (see
    /// [`World::prefetch_epochs`]).
    pub fn has_prefetched(&self, t: SimTime) -> bool {
        self.prefetch_times.contains(&t)
    }

    /// Whether the prefetch window is behind `t` (no column at or after
    /// `t`), i.e. a new [`World::prefetch_epochs`] round is due. Callers
    /// treat a *miss inside* a still-live window (an epoch time that was
    /// scheduled after the window was sampled) as a cheap serial sample
    /// instead of discarding the window.
    pub fn prefetch_exhausted(&self, t: SimTime) -> bool {
        self.prefetch_times.last().is_none_or(|&last| last < t)
    }

    /// A read-only, `Sync` view of the epoch cache for time `t`, building
    /// it first (with `threads` workers) if stale. The view answers
    /// neighbor queries without touching the mobility models, so many
    /// queries can run concurrently against one epoch.
    pub fn epoch_view(&mut self, t: SimTime, threads: usize) -> EpochView<'_> {
        self.prepare_epoch(t, threads);
        EpochView {
            positions: &self.index.positions,
            cells: &self.index.cells,
            tech_mask: &self.tech_mask,
            tech_members: &self.tech_members,
            env: &self.env,
        }
    }

    /// Computes `neighbors` for every `(seeker, technology)` query at `t`,
    /// fanning the queries across `threads` scoped workers (0 = auto) and
    /// returning results **in query order** — the deterministic merge the
    /// epoch engine relies on. Equivalent to mapping [`World::neighbors`]
    /// serially (both run the same [`EpochView`] code).
    pub fn neighbors_batch(
        &mut self,
        queries: &[(NodeId, Technology)],
        t: SimTime,
        threads: usize,
    ) -> Vec<Vec<NodeId>> {
        let view = self.epoch_view(t, threads);
        crate::par::map_indexed_with(queries.len(), threads, Vec::new, |scratch, i| {
            let (id, tech) = queries[i];
            view.neighbors(id, tech, scratch)
        })
    }

    /// The node's position at time `t`.
    pub fn position(&mut self, id: NodeId, t: SimTime) -> Point2 {
        if self.index.epoch == Some(t) {
            return self.index.positions[id.index()];
        }
        self.nodes[id.index()].mobility.position(t)
    }

    /// Euclidean distance between two nodes at time `t`, in metres.
    pub fn distance(&mut self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        let pa = self.position(a, t);
        let pb = self.position(b, t);
        pa.distance(pb)
    }

    /// Whether `a` can reach `b` over `tech` at time `t`: both carry the
    /// radio and are within the technology's range (GPRS is
    /// range-independent — any two GPRS nodes reach each other through the
    /// operator proxy, matching the thesis's GPRSPlugin).
    pub fn reachable(&mut self, a: NodeId, b: NodeId, tech: Technology, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        if !self.has_technology(a, tech) || !self.has_technology(b, tech) {
            return false;
        }
        let range = self.env.profile(tech).range_m;
        if range.is_infinite() {
            return true;
        }
        // Pairwise checks reuse the epoch cache when fresh but do not force
        // an O(N) rebuild for a lone query at a new time; only the batched
        // neighbor queries rebuild.
        let d = if self.index.epoch == Some(t) {
            self.index.positions[a.index()].distance(self.index.positions[b.index()])
        } else {
            self.distance(a, b, t)
        };
        d <= range
    }

    /// Reference implementation of [`World::reachable`] bypassing the
    /// position cache, for differential testing.
    pub fn reachable_naive(&mut self, a: NodeId, b: NodeId, tech: Technology, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        if !self.has_technology(a, tech) || !self.has_technology(b, tech) {
            return false;
        }
        let profile = self.env.profile(tech);
        if profile.range_m.is_infinite() {
            return true;
        }
        let d = self.nodes[a.index()]
            .mobility
            .position(t)
            .distance(self.nodes[b.index()].mobility.position(t));
        profile.in_range(d)
    }

    /// All nodes reachable from `id` over `tech` at time `t`, ascending by
    /// id.
    pub fn neighbors(&mut self, id: NodeId, tech: Technology, t: SimTime) -> Vec<NodeId> {
        if !self.has_technology(id, tech) {
            return Vec::new();
        }
        if self.env.profile(tech).range_m.is_infinite() {
            // Range-independent: answered from membership lists without
            // forcing an O(N) epoch build.
            return self.tech_members[tech_slot(tech)]
                .iter()
                .copied()
                .filter(|&i| i != id.0)
                .map(NodeId)
                .collect();
        }
        let mut scratch = std::mem::take(&mut self.index.scratch);
        let out = self.epoch_view(t, 1).neighbors(id, tech, &mut scratch);
        self.index.scratch = scratch;
        out
    }

    /// Reference all-pairs implementation of [`World::neighbors`], for
    /// differential testing.
    pub fn neighbors_naive(&mut self, id: NodeId, tech: Technology, t: SimTime) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.node_ids().collect();
        ids.into_iter()
            .filter(|&other| other != id && self.reachable_naive(id, other, tech, t))
            .collect()
    }

    /// All nodes reachable from `id` over *any* shared technology at `t`,
    /// with the cheapest such technology (in [`Technology::ALL`] priority
    /// order) reported for each; ascending by id.
    pub fn neighbors_any(&mut self, id: NodeId, t: SimTime) -> Vec<(NodeId, Technology)> {
        self.ensure_epoch(t);
        let p = self.index.positions[id.index()];
        // One finite-range sweep covers every technology except GPRS: the
        // grid cell is sized to the largest finite range.
        self.index.gather(p, CELL_M);
        let scratch = std::mem::take(&mut self.index.scratch);
        let mut out: Vec<(NodeId, Technology)> = Vec::new();
        for &i in &scratch {
            let other = NodeId(i);
            if other == id {
                continue;
            }
            let d = p.distance(self.index.positions[i as usize]);
            let tech = Technology::ALL.into_iter().find(|&tech| {
                if !self.has_technology(id, tech) || !self.has_technology(other, tech) {
                    return false;
                }
                let profile = self.env.profile(tech);
                profile.range_m.is_infinite() || profile.in_range(d)
            });
            if let Some(tech) = tech {
                out.push((other, tech));
            }
        }
        self.index.scratch = scratch;
        // Nodes beyond every finite range can still be GPRS neighbors; the
        // finite sweep above has already classified everything nearby, so
        // only its (small) result prefix needs dedup checks.
        if self.has_technology(id, Technology::Gprs) {
            let finite = out.len();
            for &i in &self.tech_members[tech_slot(Technology::Gprs)] {
                let other = NodeId(i);
                if other == id || out[..finite].iter().any(|&(n, _)| n == other) {
                    continue;
                }
                out.push((other, Technology::Gprs));
            }
        }
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// Reference all-pairs implementation of [`World::neighbors_any`], for
    /// differential testing.
    pub fn neighbors_any_naive(&mut self, id: NodeId, t: SimTime) -> Vec<(NodeId, Technology)> {
        let ids: Vec<NodeId> = self.node_ids().collect();
        ids.into_iter()
            .filter(|&other| other != id)
            .filter_map(|other| {
                Technology::ALL
                    .into_iter()
                    .find(|&tech| self.reachable_naive(id, other, tech, t))
                    .map(|tech| (other, tech))
            })
            .collect()
    }

    /// Samples the one-way delivery time of a `bytes`-sized frame between two
    /// reachable nodes, or `None` if they are not reachable over `tech` at
    /// `t`.
    pub fn frame_delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        tech: Technology,
        bytes: usize,
        t: SimTime,
        rng: &mut SimRng,
    ) -> Option<Duration> {
        if !self.reachable(from, to, tech, t) {
            return None;
        }
        Some(self.env.profile(tech).transfer_time(bytes, rng))
    }
}

/// A read-only view of one epoch's position cache and grid.
///
/// Borrowing only `Sync` data (positions, grid cells, radio bitmasks,
/// membership lists — *not* the mobility boxes), the view can be shared
/// across the epoch engine's worker threads; [`World::neighbors_batch`]
/// does exactly that. Both the serial [`World::neighbors`] and the
/// parallel batch run this one implementation, so their answers cannot
/// diverge.
#[derive(Debug, Clone, Copy)]
pub struct EpochView<'a> {
    positions: &'a [Point2],
    cells: &'a HashMap<(i64, i64), Vec<u32>>,
    tech_mask: &'a [u8],
    tech_members: &'a [Vec<u32>; 3],
    env: &'a RadioEnv,
}

impl EpochView<'_> {
    /// The cached position of `id` in this epoch.
    pub fn position(&self, id: NodeId) -> Point2 {
        self.positions[id.index()]
    }

    /// Whether the node carries a radio for `tech`.
    pub fn has_technology(&self, id: NodeId, tech: Technology) -> bool {
        self.tech_mask[id.index()] & tech_bit(tech) != 0
    }

    /// Collects into `scratch` the indices of all nodes in cells that a
    /// disc of radius `r` around `p` could touch, ascending.
    fn gather_into(&self, p: Point2, r: f64, scratch: &mut Vec<u32>) {
        scratch.clear();
        let (cx0, cy0) = cell_of(Point2::new(p.x - r, p.y - r));
        let (cx1, cy1) = cell_of(Point2::new(p.x + r, p.y + r));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    scratch.extend_from_slice(bucket);
                }
            }
        }
        scratch.sort_unstable();
    }

    /// All nodes reachable from `id` over `tech` in this epoch, ascending
    /// by id. `scratch` is a caller-owned gather buffer (reused across
    /// queries — per-worker in the parallel batch).
    pub fn neighbors(&self, id: NodeId, tech: Technology, scratch: &mut Vec<u32>) -> Vec<NodeId> {
        if !self.has_technology(id, tech) {
            return Vec::new();
        }
        let profile = self.env.profile(tech);
        if profile.range_m.is_infinite() {
            return self.tech_members[tech_slot(tech)]
                .iter()
                .copied()
                .filter(|&i| i != id.0)
                .map(NodeId)
                .collect();
        }
        let p = self.positions[id.index()];
        self.gather_into(p, profile.range_m, scratch);
        scratch
            .iter()
            .copied()
            .filter(|&i| {
                i != id.0
                    && self.has_technology(NodeId(i), tech)
                    && profile.in_range(p.distance(self.positions[i as usize]))
            })
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::ScriptedPath;

    fn two_node_world(dist: f64) -> (World, NodeId, NodeId) {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(dist, 0.0)));
        (w, a, b)
    }

    #[test]
    fn ids_are_dense_and_named() {
        let (w, a, b) = two_node_world(1.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(w.name(a), "a");
        assert_eq!(w.len(), 2);
        assert_eq!(w.node_ids().count(), 2);
    }

    #[test]
    fn bluetooth_range_respected() {
        let (mut w, a, b) = two_node_world(5.0);
        assert!(w.reachable(a, b, Technology::Bluetooth, SimTime::ZERO));
        let (mut w2, a2, b2) = two_node_world(15.0);
        assert!(!w2.reachable(a2, b2, Technology::Bluetooth, SimTime::ZERO));
        // ...but WLAN still covers 15 m.
        assert!(w2.reachable(a2, b2, Technology::Wlan, SimTime::ZERO));
    }

    #[test]
    fn gprs_reaches_any_distance() {
        let (mut w, a, b) = two_node_world(100_000.0);
        assert!(w.reachable(a, b, Technology::Gprs, SimTime::ZERO));
    }

    #[test]
    fn node_is_not_its_own_neighbor() {
        let (mut w, a, _) = two_node_world(1.0);
        assert!(!w.reachable(a, a, Technology::Bluetooth, SimTime::ZERO));
        assert!(!w
            .neighbors(a, Technology::Bluetooth, SimTime::ZERO)
            .contains(&a));
    }

    #[test]
    fn missing_radio_blocks_reachability() {
        let mut w = World::new();
        let a = w.add_node(
            NodeBuilder::new("bt-only")
                .at(Point2::ORIGIN)
                .with_technologies([Technology::Bluetooth]),
        );
        let b = w.add_node(
            NodeBuilder::new("wlan-only")
                .at(Point2::new(1.0, 0.0))
                .with_technologies([Technology::Wlan]),
        );
        for tech in Technology::ALL {
            assert!(!w.reachable(a, b, tech, SimTime::ZERO), "{tech}");
        }
        assert!(w.neighbors_any(a, SimTime::ZERO).is_empty());
    }

    #[test]
    fn neighbors_lists_in_range_nodes() {
        let mut w = World::new();
        let center = w.add_node(NodeBuilder::new("c").at(Point2::ORIGIN));
        let near = w.add_node(NodeBuilder::new("near").at(Point2::new(3.0, 0.0)));
        let far = w.add_node(NodeBuilder::new("far").at(Point2::new(50.0, 0.0)));
        let bt = w.neighbors(center, Technology::Bluetooth, SimTime::ZERO);
        assert_eq!(bt, vec![near]);
        let wlan = w.neighbors(center, Technology::Wlan, SimTime::ZERO);
        assert_eq!(wlan, vec![near, far]);
    }

    #[test]
    fn neighbors_any_prefers_cheapest_technology() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let close = w.add_node(NodeBuilder::new("close").at(Point2::new(2.0, 0.0)));
        let mid = w.add_node(NodeBuilder::new("mid").at(Point2::new(40.0, 0.0)));
        let far = w.add_node(NodeBuilder::new("far").at(Point2::new(4_000.0, 0.0)));
        let got = w.neighbors_any(a, SimTime::ZERO);
        assert_eq!(
            got,
            vec![
                (close, Technology::Bluetooth),
                (mid, Technology::Wlan),
                (far, Technology::Gprs)
            ]
        );
    }

    #[test]
    fn mobility_changes_reachability_over_time() {
        let mut w = World::new();
        let fixed = w.add_node(NodeBuilder::new("fixed").at(Point2::ORIGIN));
        // Walks from in-range to out-of-range over 20 s.
        let walker = w.add_node(NodeBuilder::new("walker").moving(ScriptedPath::walk(
            SimTime::ZERO,
            Point2::new(5.0, 0.0),
            Point2::new(45.0, 0.0),
            2.0,
        )));
        assert!(w.reachable(fixed, walker, Technology::Bluetooth, SimTime::ZERO));
        assert!(!w.reachable(fixed, walker, Technology::Bluetooth, SimTime::from_secs(20)));
        // WLAN still holds at 45 m.
        assert!(w.reachable(fixed, walker, Technology::Wlan, SimTime::from_secs(20)));
    }

    #[test]
    fn frame_delay_requires_reachability() {
        let (mut w, a, b) = two_node_world(500.0);
        let mut rng = SimRng::from_seed(1);
        assert!(w
            .frame_delay(a, b, Technology::Bluetooth, 100, SimTime::ZERO, &mut rng)
            .is_none());
        assert!(w
            .frame_delay(a, b, Technology::Gprs, 100, SimTime::ZERO, &mut rng)
            .is_some());
    }

    #[test]
    fn builder_dedups_technologies() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").with_technologies([
            Technology::Wlan,
            Technology::Wlan,
            Technology::Bluetooth,
        ]));
        assert_eq!(
            w.technologies(a),
            &[Technology::Bluetooth, Technology::Wlan]
        );
    }

    #[test]
    fn grid_matches_naive_on_cell_boundaries() {
        // Nodes straddling grid-cell borders and negative coordinates.
        let mut w = World::new();
        let pts = [
            Point2::new(-0.5, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(79.9, 0.0),
            Point2::new(80.1, 0.0),
            Point2::new(-80.0, -80.0),
            Point2::new(160.0, 160.0),
            Point2::new(8.0, 6.0),
        ];
        for (i, p) in pts.iter().enumerate() {
            w.add_node(NodeBuilder::new(format!("n{i}")).at(*p));
        }
        for id in 0..pts.len() {
            let id = NodeId::from_index(id);
            for tech in Technology::ALL {
                assert_eq!(
                    w.neighbors(id, tech, SimTime::ZERO),
                    w.neighbors_naive(id, tech, SimTime::ZERO),
                    "{id} {tech}"
                );
            }
            assert_eq!(
                w.neighbors_any(id, SimTime::ZERO),
                w.neighbors_any_naive(id, SimTime::ZERO),
                "{id}"
            );
        }
    }

    #[test]
    fn bucket_reuse_across_epochs_matches_fresh_world() {
        // Audit companion for the `nondeterministic-iteration` lint entries
        // on `SpatialIndex::cells` (a HashMap): rebuilding an epoch clears
        // and prunes buckets by *map iteration order*, so this test proves
        // that order is unobservable — a world whose buckets were already
        // populated at another epoch answers exactly like a fresh world
        // that never saw it, for every node and technology.
        let build = || {
            let mut w = World::new();
            for i in 0..40 {
                // Walkers fan out of one crowded cell, so epochs t1/t2
                // occupy different bucket sets and pruning actually runs.
                w.add_node(NodeBuilder::new(format!("n{i}")).moving(ScriptedPath::walk(
                    SimTime::ZERO,
                    Point2::new(i as f64 * 0.5, 0.0),
                    Point2::new(i as f64 * 21.0, i as f64 * 13.0),
                    3.0,
                )));
            }
            w
        };
        let (t1, t2) = (SimTime::from_secs(5), SimTime::from_secs(60));
        let mut reused = build();
        let mut fresh = build();
        // Dirty `reused`'s buckets at t2 (and again after t1 queries, going
        // backwards in time) before comparing at t1.
        for id in reused.node_ids().collect::<Vec<_>>() {
            reused.neighbors(id, Technology::Bluetooth, t2);
        }
        for id in fresh.node_ids().collect::<Vec<_>>() {
            for tech in Technology::ALL {
                assert_eq!(
                    reused.neighbors(id, tech, t1),
                    fresh.neighbors(id, tech, t1),
                    "{id} {tech} at t1"
                );
                assert_eq!(
                    reused.neighbors(id, tech, t1),
                    reused.neighbors_naive(id, tech, t1),
                    "{id} {tech} vs naive"
                );
            }
        }
    }

    #[test]
    fn position_cache_survives_node_addition() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        assert_eq!(w.neighbors(a, Technology::Bluetooth, SimTime::ZERO), vec![]);
        // Adding a node must invalidate the cached epoch.
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(1.0, 0.0)));
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO),
            vec![b]
        );
    }

    #[test]
    fn neighbors_batch_matches_serial_for_any_thread_count() {
        use crate::geometry::Rect;
        use crate::mobility::RandomWaypoint;
        use std::time::Duration;

        let build = || {
            let mut w = World::new();
            let area = Rect::sized(400.0, 400.0);
            for i in 0..120 {
                let start = Point2::new(
                    10.0 + (i as f64 * 37.0) % 380.0,
                    10.0 + (i as f64 * 53.0) % 380.0,
                );
                let techs: Vec<Technology> = match i % 4 {
                    0 => vec![Technology::Bluetooth, Technology::Wlan, Technology::Gprs],
                    1 => vec![Technology::Bluetooth],
                    2 => vec![Technology::Wlan, Technology::Gprs],
                    _ => vec![Technology::Wlan],
                };
                w.add_node(
                    NodeBuilder::new(format!("n{i}"))
                        .moving(RandomWaypoint::new(
                            area,
                            start,
                            (0.5, 2.0),
                            (Duration::ZERO, Duration::from_secs(4)),
                            SimRng::from_seed(1000 + i),
                        ))
                        .with_technologies(techs),
                );
            }
            w
        };

        let queries: Vec<(NodeId, Technology)> = (0..120)
            .map(|i| {
                (
                    NodeId::from_index(i),
                    Technology::ALL[i % Technology::ALL.len()],
                )
            })
            .collect();

        for t in [
            SimTime::ZERO,
            SimTime::from_secs(30),
            SimTime::from_secs(77),
        ] {
            let mut serial_world = build();
            let serial: Vec<Vec<NodeId>> = queries
                .iter()
                .map(|&(id, tech)| serial_world.neighbors(id, tech, t))
                .collect();
            for threads in [0, 1, 2, 4, 9] {
                let mut par_world = build();
                assert_eq!(
                    par_world.neighbors_batch(&queries, t, threads),
                    serial,
                    "t={t} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn prepare_epoch_parallel_positions_identical() {
        use crate::geometry::Rect;
        use crate::mobility::RandomWalk;
        use std::time::Duration;

        let build = || {
            let mut w = World::new();
            for i in 0..64 {
                w.add_node(NodeBuilder::new(format!("n{i}")).moving(RandomWalk::new(
                    Rect::sized(100.0, 100.0),
                    Point2::new(50.0, 50.0),
                    1.0,
                    Duration::from_secs(2),
                    SimRng::from_seed(i),
                )));
            }
            w
        };
        let t = SimTime::from_secs(41);
        let mut a = build();
        a.prepare_epoch(t, 1);
        let mut b = build();
        b.prepare_epoch(t, 8);
        let ids: Vec<NodeId> = a.node_ids().collect();
        for id in ids {
            assert_eq!(a.position(id, t), b.position(id, t), "{id}");
        }
    }

    #[test]
    fn custom_env_range_is_honored_by_all_query_paths() {
        use crate::radio::BLUETOOTH;
        let mut bt = BLUETOOTH.clone();
        bt.range_m = 30.0;
        let env = RadioEnv::default().with_profile(Technology::Bluetooth, bt);
        let mut w = World::with_env(env);
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(20.0, 0.0)));
        // 20 m: out of stock Bluetooth range, within the boosted env's.
        assert!(w.reachable(a, b, Technology::Bluetooth, SimTime::ZERO));
        assert!(w.reachable_naive(a, b, Technology::Bluetooth, SimTime::ZERO));
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO),
            vec![b]
        );
        assert_eq!(
            w.neighbors_any(a, SimTime::ZERO),
            vec![(b, Technology::Bluetooth)]
        );
        assert_eq!(w.env().profile(Technology::Bluetooth).range_m, 30.0);
    }

    #[test]
    fn neighbors_without_radio_is_empty() {
        let mut w = World::new();
        let a = w.add_node(
            NodeBuilder::new("bt-only")
                .at(Point2::ORIGIN)
                .with_technologies([Technology::Bluetooth]),
        );
        w.add_node(NodeBuilder::new("b").at(Point2::new(1.0, 0.0)));
        assert!(w.neighbors(a, Technology::Gprs, SimTime::ZERO).is_empty());
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO).len(),
            1
        );
    }
}
