//! The simulated world: nodes, their radios, and range queries.
//!
//! [`World`] is the authoritative map from [`NodeId`] to position (via each
//! node's mobility model) and radio equipment. It answers the questions a
//! middleware driver needs: *who is in range of whom, over which technology,
//! at what time, and how long would this frame take to deliver?*
//!
//! Since the region-sharded engine, node state lives in structure-of-arrays
//! columns (one `Vec` per attribute) and range queries are served from a
//! **region index**: node positions are bucketed into radio-cell regions at a
//! *snapshot* time, and stay valid for queries at later times because every
//! [`Mobility`] model advertises a speed bound ([`Mobility::max_speed_mps`])
//! — a query at time `t` simply widens its search disc by the maximum drift
//! since the snapshot and then filters candidates by *exact* position. The
//! exact filter makes answers independent of the snapshot cadence and of the
//! region edge length, which is what keeps trace digests bit-identical for
//! any region-grid size.
//!
//! Positions are **lazy**: a node's mobility model is only evaluated when a
//! query actually needs that node (per-node memoized by query time), so idle
//! nodes cost O(1) memory and no per-timestep work. Each node's mobility
//! model and memoized position live behind a per-node mutex
//! ([`MotionCell`]), so range queries work from `&World` — the parallel
//! epoch engine hands one [`EpochView`] to all of its workers and each
//! samples lazily; the serial paths go through `Mutex::get_mut`, which is
//! lock-free. GPRS is range-independent and answered from a per-technology
//! membership list without touching the index at all. The pre-index
//! all-pairs implementations are kept as `*_naive` methods for differential
//! testing.
//!
//! The world itself has no event loop; drivers combine it with an
//! [`EventQueue`](crate::EventQueue) or the region-sharded
//! [`RegionLanes`](crate::region::RegionLanes).

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

use crate::geometry::Point2;
use crate::mobility::{Mobility, Stationary};
use crate::radio::{RadioEnv, Technology};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifier of a node in a [`World`]. Dense and copyable; assigned in
/// insertion order starting from zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs from a raw index (for deserialization and tests).
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Configuration for one node, consumed by [`World::add_node`].
///
/// # Example
///
/// ```rust
/// use ph_netsim::{World, NodeBuilder, Technology};
/// use ph_netsim::geometry::Point2;
///
/// let mut world = World::new();
/// let id = world.add_node(
///     NodeBuilder::new("alice")
///         .at(Point2::new(1.0, 2.0))
///         .with_technologies([Technology::Bluetooth, Technology::Wlan]),
/// );
/// assert_eq!(world.name(id), "alice");
/// ```
#[derive(Debug)]
pub struct NodeBuilder {
    name: String,
    mobility: Box<dyn Mobility>,
    technologies: Vec<Technology>,
}

impl NodeBuilder {
    /// Starts building a node named `name`, stationary at the origin, with
    /// all three technologies enabled.
    pub fn new(name: impl Into<String>) -> Self {
        NodeBuilder {
            name: name.into(),
            mobility: Box::new(Stationary::new(Point2::ORIGIN)),
            technologies: Technology::ALL.to_vec(),
        }
    }

    /// Places the node stationary at `p`.
    pub fn at(mut self, p: Point2) -> Self {
        self.mobility = Box::new(Stationary::new(p));
        self
    }

    /// Uses a custom mobility model.
    pub fn moving(mut self, mobility: impl Mobility + 'static) -> Self {
        self.mobility = Box::new(mobility);
        self
    }

    /// Restricts the node's radios to `technologies`.
    pub fn with_technologies(mut self, technologies: impl IntoIterator<Item = Technology>) -> Self {
        self.technologies = technologies.into_iter().collect();
        self.technologies.sort();
        self.technologies.dedup();
        self
    }
}

/// Default region edge in metres: the largest *finite* stock technology
/// range (WLAN's 80 m), so any finite-range disc is covered by a small
/// constant number of regions. Configurable per world with
/// [`World::set_region_edge`]; the edge never affects query answers.
pub const REGION_EDGE_M: f64 = 80.0;

fn tech_slot(tech: Technology) -> usize {
    match tech {
        Technology::Bluetooth => 0,
        Technology::Wlan => 1,
        Technology::Gprs => 2,
    }
}

fn tech_bit(tech: Technology) -> u8 {
    1 << tech_slot(tech)
}

/// Radio sets by bitmask (bit = [`tech_slot`]), each in [`Technology::ALL`]
/// order — lets [`World::technologies`] answer from the one-byte mask
/// column without storing a `Vec<Technology>` per node.
const TECH_SETS: [&[Technology]; 8] = [
    &[],
    &[Technology::Bluetooth],
    &[Technology::Wlan],
    &[Technology::Bluetooth, Technology::Wlan],
    &[Technology::Gprs],
    &[Technology::Bluetooth, Technology::Gprs],
    &[Technology::Wlan, Technology::Gprs],
    &[Technology::Bluetooth, Technology::Wlan, Technology::Gprs],
];

/// Region coordinate of `p` under edge length `edge`.
fn region_of_point(p: Point2, edge: f64) -> (i64, i64) {
    ((p.x / edge).floor() as i64, (p.y / edge).floor() as i64)
}

/// Collects into `out` every bucketed node whose *snapshot* region a disc of
/// radius `r` around `p` could touch, plus all speed-unbounded nodes,
/// ascending by index. Shared by the serial queries and the parallel
/// [`EpochView`] so their candidate sets cannot diverge.
fn gather_regions(
    buckets: &HashMap<(i64, i64), Vec<u32>>,
    unbounded: &[u32],
    edge: f64,
    p: Point2,
    r: f64,
    out: &mut Vec<u32>,
) {
    out.clear();
    let (cx0, cy0) = region_of_point(Point2::new(p.x - r, p.y - r), edge);
    let (cx1, cy1) = region_of_point(Point2::new(p.x + r, p.y + r), edge);
    for cx in cx0..=cx1 {
        for cy in cy0..=cy1 {
            if let Some(bucket) = buckets.get(&(cx, cy)) {
                out.extend_from_slice(bucket);
            }
        }
    }
    out.extend_from_slice(unbounded);
    out.sort_unstable();
}

/// Region bucketing of node positions at a snapshot time, plus the lazy
/// per-node position cache.
#[derive(Debug, Default)]
struct RegionIndex {
    /// Region edge length in metres.
    edge: f64,
    /// The time the buckets were snapshot at; `None` when stale (nodes were
    /// added or no query has run yet).
    bucket_t: Option<SimTime>,
    /// Speed-bounded node indices bucketed by region at `bucket_t`; each
    /// bucket ascending because nodes are inserted in index order.
    buckets: HashMap<(i64, i64), Vec<u32>>,
    /// Every node's home region as of `bucket_t` (event-lane routing key).
    home: Vec<(i64, i64)>,
    /// Nodes whose mobility reports an infinite speed bound: never
    /// bucketed, appended to every candidate gather instead.
    unbounded: Vec<u32>,
    /// Max finite [`Mobility::max_speed_mps`] across all nodes — bounds how
    /// far any bucketed node can drift from its snapshot region.
    max_speed_bound: f64,
    /// Scratch buffer reused across serial queries.
    scratch: Vec<u32>,
}

impl RegionIndex {
    /// How much any bucketed node may have moved since the snapshot, padded
    /// for interpolation rounding in the mobility models. Queries widen
    /// their gather disc by this; the exact per-candidate distance filter
    /// then makes the padding unobservable.
    fn drift_allowance(&self, t: SimTime) -> f64 {
        match self.bucket_t {
            Some(bt) if t >= bt => {
                self.max_speed_bound * (t - bt).as_secs_f64() * (1.0 + 1e-6) + 1e-6
            }
            _ => 0.0,
        }
    }
}

/// One node's mobility model together with its memoized position sample
/// (valid iff `pos_t` equals the query time; [`SimTime::MAX`] = never
/// sampled). Wrapped in a per-node [`Mutex`] so an [`EpochView`] can sample
/// lazily from `&World` on any worker; serial `&mut World` paths reach the
/// cell through `Mutex::get_mut` and never pay for the lock.
#[derive(Debug)]
struct MotionCell {
    mobility: Box<dyn Mobility>,
    pos: Point2,
    pos_t: SimTime,
}

/// Samples (and memoizes) the cell's position at `t`. `zero_speed` is the
/// node's speed bound being exactly zero: any prior sample then answers
/// every time — this is what makes parked crowds free.
fn sample_cell(cell: &mut MotionCell, zero_speed: bool, t: SimTime) -> Point2 {
    if cell.pos_t == t {
        return cell.pos;
    }
    let p = if zero_speed && cell.pos_t != SimTime::MAX {
        cell.pos
    } else {
        cell.mobility.position(t)
    };
    cell.pos = p;
    cell.pos_t = t;
    p
}

/// The collection of simulated devices and the physics between them.
///
/// Node state is structure-of-arrays: one column per attribute, indexed by
/// [`NodeId::index`]. A node that nothing queries costs a few pointers of
/// memory and zero per-timestep work.
#[derive(Debug)]
pub struct World {
    names: Vec<String>,
    motion: Vec<Mutex<MotionCell>>,
    /// Per-node radio bitmask (bit = [`tech_slot`]); lets range queries
    /// test technologies without touching the motion cells.
    tech_mask: Vec<u8>,
    /// Per-node speed bound, captured from the mobility model at insertion.
    max_speed: Vec<f64>,
    /// Node indices carrying each technology, in [`Technology::ALL`] order;
    /// ascending by construction. Serves infinite-range (GPRS) queries.
    tech_members: [Vec<u32>; 3],
    index: RegionIndex,
    /// Radio environment: per-technology profiles and the fault plan.
    env: RadioEnv,
}

impl Default for World {
    fn default() -> Self {
        World {
            names: Vec::new(),
            motion: Vec::new(),
            tech_mask: Vec::new(),
            max_speed: Vec::new(),
            tech_members: [Vec::new(), Vec::new(), Vec::new()],
            index: RegionIndex {
                edge: REGION_EDGE_M,
                ..RegionIndex::default()
            },
            env: RadioEnv::default(),
        }
    }
}

impl World {
    /// Creates an empty world with the default [`RadioEnv`] (the built-in
    /// 2008-calibrated profiles, no faults).
    pub fn new() -> Self {
        World::default()
    }

    /// Creates an empty world with a custom radio environment.
    pub fn with_env(env: RadioEnv) -> Self {
        World {
            env,
            ..World::default()
        }
    }

    /// The radio environment this world runs under.
    pub fn env(&self) -> &RadioEnv {
        &self.env
    }

    /// The configured region edge length in metres.
    pub fn region_edge(&self) -> f64 {
        self.index.edge
    }

    /// Sets the region edge length in metres and invalidates the current
    /// snapshot. Smaller regions mean finer event-lane routing and cheaper
    /// gathers in dense worlds; query answers are unaffected (pinned by the
    /// `region_edge_never_changes_answers` test).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not finite and positive.
    pub fn set_region_edge(&mut self, edge: f64) {
        assert!(
            edge.is_finite() && edge > 0.0,
            "region edge must be finite and positive, got {edge}"
        );
        self.index.edge = edge;
        self.index.bucket_t = None;
    }

    /// Pre-sizes every node column for `n` nodes, so bulk insertion does
    /// not rehash or reallocate per node.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.names.reserve(n);
        self.motion.reserve(n);
        self.tech_mask.reserve(n);
        self.max_speed.reserve(n);
        self.index.home.reserve(n);
    }

    /// Adds a node, returning its identifier.
    pub fn add_node(&mut self, builder: NodeBuilder) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        let mut mask = 0u8;
        for &tech in &builder.technologies {
            self.tech_members[tech_slot(tech)].push(id.0);
            mask |= tech_bit(tech);
        }
        let speed = builder.mobility.max_speed_mps();
        if speed.is_finite() {
            self.index.max_speed_bound = self.index.max_speed_bound.max(speed);
        } else {
            self.index.unbounded.push(id.0);
        }
        self.names.push(builder.name);
        self.motion.push(Mutex::new(MotionCell {
            mobility: builder.mobility,
            pos: Point2::ORIGIN,
            pos_t: SimTime::MAX,
        }));
        self.tech_mask.push(mask);
        self.max_speed.push(speed);
        self.index.home.push((0, 0));
        // The snapshot taken for the previous population is stale.
        self.index.bucket_t = None;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// The node's configured name.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this world.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// The technologies the node is equipped with.
    pub fn technologies(&self, id: NodeId) -> &[Technology] {
        TECH_SETS[self.tech_mask[id.index()] as usize]
    }

    /// Whether the node carries a radio for `tech`.
    pub fn has_technology(&self, id: NodeId, tech: Technology) -> bool {
        self.tech_mask[id.index()] & tech_bit(tech) != 0
    }

    /// The node's home region as of the last snapshot — the event-lane
    /// routing key for the region-sharded engine. Before any snapshot every
    /// node homes at `(0, 0)`; the routing only balances work, it never
    /// affects event order, so a stale home is harmless.
    pub fn region_of(&self, id: NodeId) -> (i64, i64) {
        self.index.home[id.index()]
    }

    /// The node's (memoized) position at time `t` — serial path, reaches the
    /// motion cell through `Mutex::get_mut` (no lock).
    fn sample_pos(&mut self, i: usize, t: SimTime) -> Point2 {
        let zero_speed = self.max_speed[i] == 0.0;
        let cell = self.motion[i].get_mut().expect("motion cell poisoned");
        sample_cell(cell, zero_speed, t)
    }

    /// The node's (memoized) position at time `t` from a shared reference —
    /// the worker path, briefly locking the node's motion cell. Answers are
    /// identical to [`World::sample_pos`]: memoization only caches the
    /// deterministic `Mobility::position` function, and per-cell locking
    /// keeps each memo update atomic.
    fn sample_pos_shared(&self, i: usize, t: SimTime) -> Point2 {
        let zero_speed = self.max_speed[i] == 0.0;
        let mut cell = self.motion[i].lock().expect("motion cell poisoned");
        sample_cell(&mut cell, zero_speed, t)
    }

    /// Samples every node at `t` and rebuckets the world. O(N) bucketing,
    /// but only O(movers) mobility evaluations: zero-speed nodes reuse any
    /// prior sample.
    fn rebucket(&mut self, t: SimTime) {
        let n = self.names.len();
        let idx = &mut self.index;
        for bucket in idx.buckets.values_mut() {
            bucket.clear();
        }
        for i in 0..n {
            let zero_speed = self.max_speed[i] == 0.0;
            let cell = self.motion[i].get_mut().expect("motion cell poisoned");
            let coord = region_of_point(sample_cell(cell, zero_speed, t), idx.edge);
            idx.home[i] = coord;
            // Unbounded nodes are gathered unconditionally, never bucketed.
            if self.max_speed[i].is_finite() {
                idx.buckets.entry(coord).or_default().push(i as u32);
            }
        }
        idx.buckets.retain(|_, v| !v.is_empty());
        idx.bucket_t = Some(t);
    }

    /// Makes the region snapshot usable for queries at `t`: rebuckets when
    /// there is no snapshot, when `t` precedes it, or when accumulated
    /// drift would inflate gathers beyond one extra region ring.
    fn ensure_buckets(&mut self, t: SimTime) {
        let stale = match self.index.bucket_t {
            None => true,
            Some(bt) => t < bt || self.index.drift_allowance(t) > self.index.edge,
        };
        if stale {
            self.rebucket(t);
        }
    }

    /// Makes the region snapshot usable for queries at `t` and returns
    /// nothing — the serial prologue the epoch engine runs before handing
    /// an [`EpochView`] to its workers (snapshot rebuilds need `&mut`).
    pub fn prepare_epoch(&mut self, t: SimTime) {
        self.ensure_buckets(t);
    }

    /// A shared, `Sync` query view pinned to time `t`: workers call
    /// [`EpochView::neighbors`] / [`EpochView::reachable`] /
    /// [`EpochView::position`] concurrently, sampling positions lazily
    /// through the per-node motion cells. Answers are bit-identical to the
    /// serial `&mut self` queries at the same `t` (same gather, same exact
    /// filter, same memoized samples).
    ///
    /// # Panics
    ///
    /// Panics if the region snapshot is missing or newer than `t` — call
    /// [`World::prepare_epoch`] with this `t` first.
    pub fn epoch_view(&self, t: SimTime) -> EpochView<'_> {
        match self.index.bucket_t {
            Some(bt) if bt <= t => {}
            _ if self.names.is_empty() => {}
            _ => panic!("epoch_view({t}): call prepare_epoch first"),
        }
        EpochView {
            world: self,
            t,
            drift: self.index.drift_allowance(t),
        }
    }

    /// Computes `neighbors` for every `(seeker, technology)` query at `t`,
    /// returning results **in query order** — the deterministic merge the
    /// region engine relies on. The pure candidate filter fans out across
    /// `threads` scoped workers (0 = auto) over one [`EpochView`]; the
    /// serial [`World::neighbors`] runs the same filter, so their answers
    /// cannot diverge — pinned by
    /// `neighbors_batch_matches_serial_for_any_thread_count`.
    pub fn neighbors_batch(
        &mut self,
        queries: &[(NodeId, Technology)],
        t: SimTime,
        threads: usize,
    ) -> Vec<Vec<NodeId>> {
        self.prepare_epoch(t);
        let view = self.epoch_view(t);
        crate::par::map_indexed_with(queries.len(), threads, Vec::new, |scratch, qi| {
            let (id, tech) = queries[qi];
            view.neighbors(id, tech, scratch)
        })
    }

    /// The node's position at time `t`.
    pub fn position(&mut self, id: NodeId, t: SimTime) -> Point2 {
        self.sample_pos(id.index(), t)
    }

    /// Euclidean distance between two nodes at time `t`, in metres.
    pub fn distance(&mut self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        let pa = self.position(a, t);
        let pb = self.position(b, t);
        pa.distance(pb)
    }

    /// Whether `a` can reach `b` over `tech` at time `t`: both carry the
    /// radio and are within the technology's range (GPRS is
    /// range-independent — any two GPRS nodes reach each other through the
    /// operator proxy, matching the thesis's GPRSPlugin).
    pub fn reachable(&mut self, a: NodeId, b: NodeId, tech: Technology, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        if !self.has_technology(a, tech) || !self.has_technology(b, tech) {
            return false;
        }
        let profile = self.env.profile(tech);
        if profile.range_m.is_infinite() {
            return true;
        }
        // Pairwise checks sample lazily (two memoized positions); they
        // never force an O(N) snapshot.
        let d = self.distance(a, b, t);
        self.env.profile(tech).in_range(d)
    }

    /// Reference implementation of [`World::reachable`] bypassing the
    /// position cache, for differential testing.
    pub fn reachable_naive(&mut self, a: NodeId, b: NodeId, tech: Technology, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        if !self.has_technology(a, tech) || !self.has_technology(b, tech) {
            return false;
        }
        let profile = self.env.profile(tech);
        if profile.range_m.is_infinite() {
            return true;
        }
        let d = {
            let pa = self.motion[a.index()]
                .get_mut()
                .unwrap()
                .mobility
                .position(t);
            let pb = self.motion[b.index()]
                .get_mut()
                .unwrap()
                .mobility
                .position(t);
            pa.distance(pb)
        };
        self.env.profile(tech).in_range(d)
    }

    /// All nodes reachable from `id` over `tech` at time `t`, ascending by
    /// id.
    pub fn neighbors(&mut self, id: NodeId, tech: Technology, t: SimTime) -> Vec<NodeId> {
        if !self.has_technology(id, tech) {
            return Vec::new();
        }
        if self.env.profile(tech).range_m.is_infinite() {
            // Range-independent: answered from membership lists without
            // touching the region index.
            return self.tech_members[tech_slot(tech)]
                .iter()
                .copied()
                .filter(|&i| i != id.0)
                .map(NodeId)
                .collect();
        }
        self.ensure_buckets(t);
        let mut scratch = std::mem::take(&mut self.index.scratch);
        let out = self.epoch_view(t).neighbors(id, tech, &mut scratch);
        self.index.scratch = scratch;
        out
    }

    /// Reference all-pairs implementation of [`World::neighbors`], for
    /// differential testing.
    pub fn neighbors_naive(&mut self, id: NodeId, tech: Technology, t: SimTime) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.node_ids().collect();
        ids.into_iter()
            .filter(|&other| other != id && self.reachable_naive(id, other, tech, t))
            .collect()
    }

    /// The largest finite technology range in this world's environment —
    /// one gather at this radius covers every finite-range technology.
    fn max_finite_range(&self) -> f64 {
        Technology::ALL
            .into_iter()
            .map(|tech| self.env.profile(tech).range_m)
            .filter(|r| r.is_finite())
            .fold(0.0, f64::max)
    }

    /// All nodes reachable from `id` over *any* shared technology at `t`,
    /// with the cheapest such technology (in [`Technology::ALL`] priority
    /// order) reported for each; ascending by id.
    pub fn neighbors_any(&mut self, id: NodeId, t: SimTime) -> Vec<(NodeId, Technology)> {
        self.ensure_buckets(t);
        let drift = self.index.drift_allowance(t);
        let p = self.sample_pos(id.index(), t);
        let mut scratch = std::mem::take(&mut self.index.scratch);
        // One finite-range sweep covers every technology except GPRS.
        gather_regions(
            &self.index.buckets,
            &self.index.unbounded,
            self.index.edge,
            p,
            self.max_finite_range() + drift,
            &mut scratch,
        );
        let mut out: Vec<(NodeId, Technology)> = Vec::new();
        for &raw in &scratch {
            let other = NodeId(raw);
            if other == id {
                continue;
            }
            let d = p.distance(self.sample_pos(other.index(), t));
            let tech = Technology::ALL.into_iter().find(|&tech| {
                if !self.has_technology(id, tech) || !self.has_technology(other, tech) {
                    return false;
                }
                let profile = self.env.profile(tech);
                profile.range_m.is_infinite() || profile.in_range(d)
            });
            if let Some(tech) = tech {
                out.push((other, tech));
            }
        }
        self.index.scratch = scratch;
        // Nodes beyond every finite range can still be GPRS neighbors; the
        // finite sweep above has already classified everything nearby, so
        // only its (small) result prefix needs dedup checks.
        if self.has_technology(id, Technology::Gprs) {
            let finite = out.len();
            for &i in &self.tech_members[tech_slot(Technology::Gprs)] {
                let other = NodeId(i);
                if other == id || out[..finite].iter().any(|&(n, _)| n == other) {
                    continue;
                }
                out.push((other, Technology::Gprs));
            }
        }
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// Reference all-pairs implementation of [`World::neighbors_any`], for
    /// differential testing.
    pub fn neighbors_any_naive(&mut self, id: NodeId, t: SimTime) -> Vec<(NodeId, Technology)> {
        let ids: Vec<NodeId> = self.node_ids().collect();
        ids.into_iter()
            .filter(|&other| other != id)
            .filter_map(|other| {
                Technology::ALL
                    .into_iter()
                    .find(|&tech| self.reachable_naive(id, other, tech, t))
                    .map(|tech| (other, tech))
            })
            .collect()
    }

    /// Samples the one-way delivery time of a `bytes`-sized frame between two
    /// reachable nodes, or `None` if they are not reachable over `tech` at
    /// `t`.
    pub fn frame_delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        tech: Technology,
        bytes: usize,
        t: SimTime,
        rng: &mut SimRng,
    ) -> Option<Duration> {
        if !self.reachable(from, to, tech, t) {
            return None;
        }
        Some(self.env.profile(tech).transfer_time(bytes, rng))
    }
}

/// A shared query view over one [`World`], pinned to a single query time.
///
/// The view is `Copy`, `Sync`, and answers exactly like the serial `&mut`
/// queries at the same time: candidate gathering uses the same snapshot
/// buckets and drift allowance, the per-candidate filter uses the same
/// *exact* positions (sampled lazily through the per-node motion cells).
/// Obtained from [`World::epoch_view`] after [`World::prepare_epoch`]; the
/// parallel epoch engine hands one view to all workers of a timestamp
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct EpochView<'a> {
    world: &'a World,
    t: SimTime,
    drift: f64,
}

impl EpochView<'_> {
    /// The query time this view is pinned to.
    pub fn time(&self) -> SimTime {
        self.t
    }

    fn has_technology(&self, id: NodeId, tech: Technology) -> bool {
        self.world.tech_mask[id.index()] & tech_bit(tech) != 0
    }

    /// The node's position at the view's time (lazily sampled, memoized).
    pub fn position(&self, id: NodeId) -> Point2 {
        self.world.sample_pos_shared(id.index(), self.t)
    }

    /// Whether `a` can reach `b` over `tech` at the view's time. Mirrors
    /// [`World::reachable`] exactly.
    pub fn reachable(&self, a: NodeId, b: NodeId, tech: Technology) -> bool {
        if a == b {
            return false;
        }
        if !self.has_technology(a, tech) || !self.has_technology(b, tech) {
            return false;
        }
        let profile = self.world.env.profile(tech);
        if profile.range_m.is_infinite() {
            return true;
        }
        profile.in_range(self.position(a).distance(self.position(b)))
    }

    /// All nodes reachable from `id` over `tech`, ascending by id.
    /// `scratch` is a caller-owned gather buffer (per-worker in a batch).
    pub fn neighbors(&self, id: NodeId, tech: Technology, scratch: &mut Vec<u32>) -> Vec<NodeId> {
        if !self.has_technology(id, tech) {
            return Vec::new();
        }
        let profile = self.world.env.profile(tech);
        if profile.range_m.is_infinite() {
            return self.world.tech_members[tech_slot(tech)]
                .iter()
                .copied()
                .filter(|&i| i != id.0)
                .map(NodeId)
                .collect();
        }
        let idx = &self.world.index;
        let p = self.position(id);
        gather_regions(
            &idx.buckets,
            &idx.unbounded,
            idx.edge,
            p,
            profile.range_m + self.drift,
            scratch,
        );
        scratch
            .iter()
            .copied()
            .filter(|&i| {
                i != id.0
                    && self.has_technology(NodeId(i), tech)
                    && profile
                        .in_range(p.distance(self.world.sample_pos_shared(i as usize, self.t)))
            })
            .map(NodeId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::ScriptedPath;

    fn two_node_world(dist: f64) -> (World, NodeId, NodeId) {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(dist, 0.0)));
        (w, a, b)
    }

    #[test]
    fn ids_are_dense_and_named() {
        let (w, a, b) = two_node_world(1.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(w.name(a), "a");
        assert_eq!(w.len(), 2);
        assert_eq!(w.node_ids().count(), 2);
    }

    #[test]
    fn bluetooth_range_respected() {
        let (mut w, a, b) = two_node_world(5.0);
        assert!(w.reachable(a, b, Technology::Bluetooth, SimTime::ZERO));
        let (mut w2, a2, b2) = two_node_world(15.0);
        assert!(!w2.reachable(a2, b2, Technology::Bluetooth, SimTime::ZERO));
        // ...but WLAN still covers 15 m.
        assert!(w2.reachable(a2, b2, Technology::Wlan, SimTime::ZERO));
    }

    #[test]
    fn gprs_reaches_any_distance() {
        let (mut w, a, b) = two_node_world(100_000.0);
        assert!(w.reachable(a, b, Technology::Gprs, SimTime::ZERO));
    }

    #[test]
    fn node_is_not_its_own_neighbor() {
        let (mut w, a, _) = two_node_world(1.0);
        assert!(!w.reachable(a, a, Technology::Bluetooth, SimTime::ZERO));
        assert!(!w
            .neighbors(a, Technology::Bluetooth, SimTime::ZERO)
            .contains(&a));
    }

    #[test]
    fn missing_radio_blocks_reachability() {
        let mut w = World::new();
        let a = w.add_node(
            NodeBuilder::new("bt-only")
                .at(Point2::ORIGIN)
                .with_technologies([Technology::Bluetooth]),
        );
        let b = w.add_node(
            NodeBuilder::new("wlan-only")
                .at(Point2::new(1.0, 0.0))
                .with_technologies([Technology::Wlan]),
        );
        for tech in Technology::ALL {
            assert!(!w.reachable(a, b, tech, SimTime::ZERO), "{tech}");
        }
        assert!(w.neighbors_any(a, SimTime::ZERO).is_empty());
    }

    #[test]
    fn neighbors_lists_in_range_nodes() {
        let mut w = World::new();
        let center = w.add_node(NodeBuilder::new("c").at(Point2::ORIGIN));
        let near = w.add_node(NodeBuilder::new("near").at(Point2::new(3.0, 0.0)));
        let far = w.add_node(NodeBuilder::new("far").at(Point2::new(50.0, 0.0)));
        let bt = w.neighbors(center, Technology::Bluetooth, SimTime::ZERO);
        assert_eq!(bt, vec![near]);
        let wlan = w.neighbors(center, Technology::Wlan, SimTime::ZERO);
        assert_eq!(wlan, vec![near, far]);
    }

    #[test]
    fn neighbors_any_prefers_cheapest_technology() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let close = w.add_node(NodeBuilder::new("close").at(Point2::new(2.0, 0.0)));
        let mid = w.add_node(NodeBuilder::new("mid").at(Point2::new(40.0, 0.0)));
        let far = w.add_node(NodeBuilder::new("far").at(Point2::new(4_000.0, 0.0)));
        let got = w.neighbors_any(a, SimTime::ZERO);
        assert_eq!(
            got,
            vec![
                (close, Technology::Bluetooth),
                (mid, Technology::Wlan),
                (far, Technology::Gprs)
            ]
        );
    }

    #[test]
    fn mobility_changes_reachability_over_time() {
        let mut w = World::new();
        let fixed = w.add_node(NodeBuilder::new("fixed").at(Point2::ORIGIN));
        // Walks from in-range to out-of-range over 20 s.
        let walker = w.add_node(NodeBuilder::new("walker").moving(ScriptedPath::walk(
            SimTime::ZERO,
            Point2::new(5.0, 0.0),
            Point2::new(45.0, 0.0),
            2.0,
        )));
        assert!(w.reachable(fixed, walker, Technology::Bluetooth, SimTime::ZERO));
        assert!(!w.reachable(fixed, walker, Technology::Bluetooth, SimTime::from_secs(20)));
        // WLAN still holds at 45 m.
        assert!(w.reachable(fixed, walker, Technology::Wlan, SimTime::from_secs(20)));
    }

    #[test]
    fn frame_delay_requires_reachability() {
        let (mut w, a, b) = two_node_world(500.0);
        let mut rng = SimRng::from_seed(1);
        assert!(w
            .frame_delay(a, b, Technology::Bluetooth, 100, SimTime::ZERO, &mut rng)
            .is_none());
        assert!(w
            .frame_delay(a, b, Technology::Gprs, 100, SimTime::ZERO, &mut rng)
            .is_some());
    }

    #[test]
    fn builder_dedups_technologies() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").with_technologies([
            Technology::Wlan,
            Technology::Wlan,
            Technology::Bluetooth,
        ]));
        assert_eq!(
            w.technologies(a),
            &[Technology::Bluetooth, Technology::Wlan]
        );
    }

    #[test]
    fn grid_matches_naive_on_cell_boundaries() {
        // Nodes straddling region borders and negative coordinates.
        let mut w = World::new();
        let pts = [
            Point2::new(-0.5, 0.0),
            Point2::new(0.5, 0.0),
            Point2::new(79.9, 0.0),
            Point2::new(80.1, 0.0),
            Point2::new(-80.0, -80.0),
            Point2::new(160.0, 160.0),
            Point2::new(8.0, 6.0),
        ];
        for (i, p) in pts.iter().enumerate() {
            w.add_node(NodeBuilder::new(format!("n{i}")).at(*p));
        }
        for id in 0..pts.len() {
            let id = NodeId::from_index(id);
            for tech in Technology::ALL {
                assert_eq!(
                    w.neighbors(id, tech, SimTime::ZERO),
                    w.neighbors_naive(id, tech, SimTime::ZERO),
                    "{id} {tech}"
                );
            }
            assert_eq!(
                w.neighbors_any(id, SimTime::ZERO),
                w.neighbors_any_naive(id, SimTime::ZERO),
                "{id}"
            );
        }
    }

    /// Walkers that fan out of one crowded region across query times,
    /// exercising drift-widened gathers, snapshot rebuilds, and
    /// backwards-in-time queries — all must match a fresh world and the
    /// naive path exactly.
    fn walker_world() -> World {
        let mut w = World::new();
        for i in 0..40 {
            w.add_node(NodeBuilder::new(format!("n{i}")).moving(ScriptedPath::walk(
                SimTime::ZERO,
                Point2::new(i as f64 * 0.5, 0.0),
                Point2::new(i as f64 * 21.0, i as f64 * 13.0),
                3.0,
            )));
        }
        w
    }

    #[test]
    fn bucket_reuse_across_epochs_matches_fresh_world() {
        // Audit companion for the `nondeterministic-iteration` lint entries
        // on `RegionIndex::buckets` (a HashMap): rebucketing clears and
        // prunes buckets by *map iteration order*, so this test proves that
        // order is unobservable — a world whose buckets were already
        // populated at another time answers exactly like a fresh world that
        // never saw it, for every node and technology.
        let (t1, t2) = (SimTime::from_secs(5), SimTime::from_secs(60));
        let mut reused = walker_world();
        let mut fresh = walker_world();
        // Dirty `reused`'s buckets at t2 (and query t1 afterwards, going
        // backwards in time) before comparing at t1.
        for id in reused.node_ids().collect::<Vec<_>>() {
            reused.neighbors(id, Technology::Bluetooth, t2);
        }
        for id in fresh.node_ids().collect::<Vec<_>>() {
            for tech in Technology::ALL {
                assert_eq!(
                    reused.neighbors(id, tech, t1),
                    fresh.neighbors(id, tech, t1),
                    "{id} {tech} at t1"
                );
                assert_eq!(
                    reused.neighbors(id, tech, t1),
                    reused.neighbors_naive(id, tech, t1),
                    "{id} {tech} vs naive"
                );
            }
        }
    }

    #[test]
    fn drifted_queries_match_naive_between_snapshots() {
        // Query a sequence of times close enough together that the snapshot
        // is reused (drift allowance < edge): candidates must still be
        // exact, because the gather disc widens with the drift bound.
        let mut w = walker_world();
        let ids: Vec<NodeId> = w.node_ids().collect();
        for secs in [10u64, 12, 15, 20, 25, 30] {
            let t = SimTime::from_secs(secs);
            for &id in &ids {
                for tech in Technology::ALL {
                    assert_eq!(
                        w.neighbors(id, tech, t),
                        w.neighbors_naive(id, tech, t),
                        "{id} {tech} at {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn region_edge_never_changes_answers() {
        // The tentpole invariant at the World layer: the region grid size
        // is a performance knob, not a semantics knob.
        let t = SimTime::from_secs(20);
        let mut reference = walker_world();
        let ids: Vec<NodeId> = reference.node_ids().collect();
        let expected: Vec<Vec<NodeId>> = ids
            .iter()
            .map(|&id| reference.neighbors(id, Technology::Wlan, t))
            .collect();
        for edge in [5.0, 20.0, 80.0, 250.0, 1000.0] {
            let mut w = walker_world();
            w.set_region_edge(edge);
            assert_eq!(w.region_edge(), edge);
            for (k, &id) in ids.iter().enumerate() {
                assert_eq!(
                    w.neighbors(id, Technology::Wlan, t),
                    expected[k],
                    "edge={edge} {id}"
                );
            }
        }
    }

    #[test]
    fn region_of_reports_snapshot_home() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::new(10.0, 10.0)));
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(-10.0, 170.0)));
        // No snapshot yet: everyone homes at the origin region.
        assert_eq!(w.region_of(a), (0, 0));
        w.neighbors(a, Technology::Bluetooth, SimTime::ZERO);
        assert_eq!(w.region_of(a), (0, 0));
        assert_eq!(w.region_of(b), (-1, 2));
    }

    #[test]
    fn position_cache_survives_node_addition() {
        let mut w = World::new();
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        assert_eq!(w.neighbors(a, Technology::Bluetooth, SimTime::ZERO), vec![]);
        // Adding a node must invalidate the snapshot.
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(1.0, 0.0)));
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO),
            vec![b]
        );
    }

    #[test]
    fn neighbors_batch_matches_serial_for_any_thread_count() {
        use crate::geometry::Rect;
        use crate::mobility::RandomWaypoint;
        use std::time::Duration;

        let build = || {
            let mut w = World::new();
            let area = Rect::sized(400.0, 400.0);
            for i in 0..120 {
                let start = Point2::new(
                    10.0 + (i as f64 * 37.0) % 380.0,
                    10.0 + (i as f64 * 53.0) % 380.0,
                );
                let techs: Vec<Technology> = match i % 4 {
                    0 => vec![Technology::Bluetooth, Technology::Wlan, Technology::Gprs],
                    1 => vec![Technology::Bluetooth],
                    2 => vec![Technology::Wlan, Technology::Gprs],
                    _ => vec![Technology::Wlan],
                };
                w.add_node(
                    NodeBuilder::new(format!("n{i}"))
                        .moving(RandomWaypoint::new(
                            area,
                            start,
                            (0.5, 2.0),
                            (Duration::ZERO, Duration::from_secs(4)),
                            SimRng::from_seed(1000 + i),
                        ))
                        .with_technologies(techs),
                );
            }
            w
        };

        let queries: Vec<(NodeId, Technology)> = (0..120)
            .map(|i| {
                (
                    NodeId::from_index(i),
                    Technology::ALL[i % Technology::ALL.len()],
                )
            })
            .collect();

        for t in [
            SimTime::ZERO,
            SimTime::from_secs(30),
            SimTime::from_secs(77),
        ] {
            let mut serial_world = build();
            let serial: Vec<Vec<NodeId>> = queries
                .iter()
                .map(|&(id, tech)| serial_world.neighbors(id, tech, t))
                .collect();
            for threads in [0, 1, 2, 4, 9] {
                let mut par_world = build();
                assert_eq!(
                    par_world.neighbors_batch(&queries, t, threads),
                    serial,
                    "t={t} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn custom_env_range_is_honored_by_all_query_paths() {
        use crate::radio::BLUETOOTH;
        let mut bt = BLUETOOTH.clone();
        bt.range_m = 30.0;
        let env = RadioEnv::default().with_profile(Technology::Bluetooth, bt);
        let mut w = World::with_env(env);
        let a = w.add_node(NodeBuilder::new("a").at(Point2::ORIGIN));
        let b = w.add_node(NodeBuilder::new("b").at(Point2::new(20.0, 0.0)));
        // 20 m: out of stock Bluetooth range, within the boosted env's.
        assert!(w.reachable(a, b, Technology::Bluetooth, SimTime::ZERO));
        assert!(w.reachable_naive(a, b, Technology::Bluetooth, SimTime::ZERO));
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO),
            vec![b]
        );
        assert_eq!(
            w.neighbors_any(a, SimTime::ZERO),
            vec![(b, Technology::Bluetooth)]
        );
        assert_eq!(w.env().profile(Technology::Bluetooth).range_m, 30.0);
    }

    #[test]
    fn neighbors_without_radio_is_empty() {
        let mut w = World::new();
        let a = w.add_node(
            NodeBuilder::new("bt-only")
                .at(Point2::ORIGIN)
                .with_technologies([Technology::Bluetooth]),
        );
        w.add_node(NodeBuilder::new("b").at(Point2::new(1.0, 0.0)));
        assert!(w.neighbors(a, Technology::Gprs, SimTime::ZERO).is_empty());
        assert_eq!(
            w.neighbors(a, Technology::Bluetooth, SimTime::ZERO).len(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_region_edge_is_rejected() {
        let mut w = World::new();
        w.set_region_edge(0.0);
    }
}
