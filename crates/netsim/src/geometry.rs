//! Plane geometry for node positions and movement areas.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the 2-D simulation plane, in metres.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Point2 {
    /// East–west coordinate in metres.
    pub x: f64,
    /// North–south coordinate in metres.
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    ///
    /// # Example
    ///
    /// ```rust
    /// use ph_netsim::geometry::Point2;
    /// let d = Point2::new(0.0, 0.0).distance(Point2::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).length()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` outside `[0, 1]` extrapolates.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A displacement between two [`Point2`] values, in metres.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Vec2 {
    /// X component in metres.
    pub x: f64,
    /// Y component in metres.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length in metres.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Unit vector in the same direction, or [`Vec2::ZERO`] for the zero
    /// vector.
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / len, self.y / len)
        }
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Point2> for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

/// An axis-aligned rectangular area, used to bound mobility models.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Rect {
    /// Minimum corner (south-west).
    pub min: Point2,
    /// Maximum corner (north-east).
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise `<= max`.
    pub fn new(min: Point2, max: Point2) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Rect requires min <= max, got {min} / {max}"
        );
        Rect { min, max }
    }

    /// A `w × h` metre rectangle with its south-west corner at the origin.
    pub fn sized(w: f64, h: f64) -> Self {
        Rect::new(Point2::ORIGIN, Point2::new(w, h))
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The centre point.
    pub fn center(&self) -> Point2 {
        Point2::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside (or on the border of) the rectangle.
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the nearest point inside the rectangle.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, 10.0));
    }

    #[test]
    fn vector_normalization() {
        let v = Vec2::new(3.0, 4.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::sized(10.0, 5.0);
        assert!(r.contains(Point2::new(5.0, 2.0)));
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(!r.contains(Point2::new(-0.1, 2.0)));
        assert_eq!(r.clamp(Point2::new(20.0, -3.0)), Point2::new(10.0, 0.0));
        assert_eq!(r.center(), Point2::new(5.0, 2.5));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn invalid_rect_panics() {
        let _ = Rect::new(Point2::new(1.0, 1.0), Point2::new(0.0, 0.0));
    }

    #[test]
    fn rect_dimensions() {
        let r = Rect::new(Point2::new(2.0, 3.0), Point2::new(7.0, 9.0));
        assert_eq!(r.width(), 5.0);
        assert_eq!(r.height(), 6.0);
    }
}
