//! Virtual simulation time.
//!
//! [`SimTime`] is a monotonically increasing instant measured in microseconds
//! since the start of the simulation. Durations are plain
//! [`std::time::Duration`] values, which keeps arithmetic interoperable with
//! the rest of the ecosystem while the instant itself stays a distinct newtype
//! (you cannot accidentally add two instants).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the virtual simulation clock.
///
/// Internally a count of microseconds since simulation start. `SimTime`
/// implements total ordering and cheap copying, and is the key by which the
/// [`EventQueue`](crate::EventQueue) orders events.
///
/// # Example
///
/// ```rust
/// use ph_netsim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(500));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * 1e6).round() as u64)
    }

    /// Returns the number of whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time since simulation start as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, or [`Duration::ZERO`] if
    /// `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        SimTime(self.0.saturating_add(micros))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for the lenient variant.
    fn sub(self, rhs: SimTime) -> Duration {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        Duration::from_micros(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs(1) + Duration::from_millis(250);
        assert_eq!(t.as_micros(), 1_250_000);
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, Duration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since_is_lenient() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
