//! Deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by their scheduled [`SimTime`]; ties are broken by
//! insertion order (a monotonically increasing sequence number), so two runs
//! that schedule the same events in the same order always execute them in the
//! same order — the foundation of reproducible experiments.
//!
//! Since the parallel-epoch work the queue is backed by a
//! [hierarchical timing wheel](crate::wheel) instead of a global
//! `BinaryHeap`: scheduling and popping near-horizon events is O(1)
//! amortized, far-future timers overflow to a heap, and the pop stream is
//! bit-identical to the old heap implementation (same `(at, seq)`
//! tie-break, enforced by differential property tests).

use std::time::Duration;

use crate::time::SimTime;
pub use crate::wheel::TimerToken;
use crate::wheel::TimerWheel;

/// A time-ordered queue of simulation events.
///
/// The queue owns the virtual clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling an event in the
/// past is a logic error and panics, because it would mean the simulation is
/// not causally consistent.
///
/// # Example
///
/// ```rust
/// use ph_netsim::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Duration::from_secs(2), "beta");
/// q.schedule_after(Duration::from_secs(1), "alpha");
/// let (t1, e1) = q.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_secs(1), "alpha"));
/// let (t2, e2) = q.pop().unwrap();
/// assert_eq!((t2, e2), (SimTime::from_secs(2), "beta"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue sized for roughly `capacity` in-flight
    /// events, avoiding reallocation churn while the schedule grows.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            wheel: TimerWheel::with_capacity(capacity),
            now: SimTime::ZERO,
        }
    }

    /// Reserves space for at least `additional` more in-flight events.
    pub fn reserve(&mut self, additional: usize) {
        self.wheel.reserve(additional);
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        self.wheel.schedule(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Like [`EventQueue::schedule`], but returns a token that
    /// [`EventQueue::cancel`] accepts.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerToken {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        self.wheel.schedule_cancellable(at, event)
    }

    /// Cancels a pending event scheduled with
    /// [`EventQueue::schedule_cancellable`]. Returns `true` if the event
    /// was still pending, `false` if it already fired or was already
    /// cancelled.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        self.wheel.cancel(token)
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock is left
    /// where it was).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.wheel.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because the wheel may rotate slots into its ready
    /// heap; the observable pop stream is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek()
    }

    /// Pops every event due at or before `deadline` into `out`, in exact
    /// pop order, reusing `out`'s capacity (no per-event allocation). The
    /// clock advances to the last popped event's timestamp. Returns the
    /// number of events drained.
    ///
    /// Events come out grouped by timestamp (the stream is time-ordered),
    /// so callers batching per-timestamp work can scan `out` for runs of
    /// equal [`SimTime`].
    pub fn drain_until(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let before = out.len();
        while self.peek_time().is_some_and(|t| t <= deadline) {
            out.push(self.pop().expect("peeked"));
        }
        out.len() - before
    }

    /// Pops the entire batch of events sharing the earliest pending
    /// timestamp, provided it is at or before `deadline`, into `out`
    /// (cleared first, capacity reused). Returns that timestamp, or `None`
    /// if nothing is due.
    ///
    /// Events scheduled *at the returned timestamp* while the caller
    /// processes the batch land in a later batch at the same timestamp —
    /// exactly the order a pop-one-at-a-time loop would produce, since
    /// their sequence numbers are larger.
    pub fn drain_batch(&mut self, deadline: SimTime, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let t = self.peek_time().filter(|&t| t <= deadline)?;
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked").1);
        }
        Some(t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.wheel.clear();
    }

    /// Advances the clock to `t` without popping anything.
    ///
    /// Useful after draining all events up to a deadline, so subsequent
    /// scheduling is relative to the deadline. Moving backwards is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if an event earlier than `t` is still pending (advancing past
    /// it would break causality).
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        if let Some(first) = self.peek_time() {
            assert!(
                first >= t,
                "cannot advance past pending event at {first:?} to {t:?}"
            );
        }
        self.now = t;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(Duration::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        q.advance_to(SimTime::from_secs(1)); // no-op backwards
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot advance past pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.advance_to(SimTime::from_secs(3));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn cancel_skips_event_and_reports_liveness() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        let tok = q.schedule_cancellable(SimTime::from_secs(2), 'b');
        q.schedule(SimTime::from_secs(3), 'c');
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 2);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'c']);
    }

    #[test]
    fn drain_until_pops_everything_due() {
        let mut q = EventQueue::new();
        for i in 0..6u32 {
            q.schedule(SimTime::from_secs(u64::from(i)), i);
        }
        let mut out = Vec::new();
        let n = q.drain_until(SimTime::from_secs(3), &mut out);
        assert_eq!(n, 4);
        assert_eq!(
            out.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            (0..4).map(SimTime::from_secs).collect::<Vec<_>>()
        );
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_batch_groups_one_timestamp() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.schedule(t1, 'a');
        q.schedule(t2, 'x');
        q.schedule(t1, 'b');
        let mut batch = Vec::new();
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t1));
        assert_eq!(batch, vec!['a', 'b']);
        assert_eq!(q.now(), t1);
        // An event scheduled at the drained timestamp lands in the next
        // batch at the same timestamp, preserving serial pop order.
        q.schedule(t1, 'c');
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t1));
        assert_eq!(batch, vec!['c']);
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), Some(t2));
        assert_eq!(batch, vec!['x']);
        // Past the deadline: nothing drains.
        q.schedule(SimTime::from_secs(10), 'z');
        assert_eq!(q.drain_batch(SimTime::from_secs(9), &mut batch), None);
        assert!(batch.is_empty());
    }
}
