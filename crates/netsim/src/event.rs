//! Deterministic event queue for discrete-event simulation.
//!
//! Events are ordered by their scheduled [`SimTime`]; ties are broken by
//! insertion order (a monotonically increasing sequence number), so two runs
//! that schedule the same events in the same order always execute them in the
//! same order — the foundation of reproducible experiments.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// The queue owns the virtual clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling an event in the
/// past is a logic error and panics, because it would mean the simulation is
/// not causally consistent.
///
/// # Example
///
/// ```rust
/// use ph_netsim::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Duration::from_secs(2), "beta");
/// q.schedule_after(Duration::from_secs(1), "alpha");
/// let (t1, e1) = q.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_secs(1), "alpha"));
/// let (t2, e2) = q.pop().unwrap();
/// assert_eq!((t2, e2), (SimTime::from_secs(2), "beta"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Manual Ord: a max-heap made into a min-heap by reversing the comparison.
// Only `(at, seq)` participate, so `E` needs no bounds.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock is left
    /// where it was).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Advances the clock to `t` without popping anything.
    ///
    /// Useful after draining all events up to a deadline, so subsequent
    /// scheduling is relative to the deadline. Moving backwards is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if an event earlier than `t` is still pending (advancing past
    /// it would break causality).
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        if let Some(first) = self.peek_time() {
            assert!(
                first >= t,
                "cannot advance past pending event at {first:?} to {t:?}"
            );
        }
        self.now = t;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(Duration::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        q.advance_to(SimTime::from_secs(1)); // no-op backwards
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot advance past pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.advance_to(SimTime::from_secs(3));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }
}
