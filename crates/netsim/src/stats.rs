//! Small statistics helpers for experiment reporting.

use std::fmt;
use std::time::Duration;

/// Summary statistics over a set of samples.
///
/// # Example
///
/// ```rust
/// use ph_netsim::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub p50: f64,
    /// 90th percentile (linear interpolation).
    pub p90: f64,
}

impl Summary {
    /// Computes a summary, or `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
        })
    }

    /// Computes a summary over durations, expressed in seconds.
    pub fn from_durations(samples: &[Duration]) -> Option<Summary> {
        let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        Summary::from_samples(&secs)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} p50={:.2} p90={:.2} max={:.2}",
            self.n, self.mean, self.std_dev, self.min, self.p50, self.p90, self.max
        )
    }
}

/// Linear-interpolation percentile over a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p90, 7.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01, "{}", s.std_dev);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn median_interpolates() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.p50, 2.5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::from_samples(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
    }

    #[test]
    fn durations_in_seconds() {
        let s = Summary::from_durations(&[Duration::from_millis(500), Duration::from_millis(1500)])
            .unwrap();
        assert_eq!(s.mean, 1.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = Summary::from_samples(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.50"));
    }
}
