//! Seeded, forkable randomness for reproducible simulation.
//!
//! Every source of randomness in a simulation run descends from a single
//! `u64` seed. Components fork their own child generators with
//! [`SimRng::fork`], so adding randomness to one component never perturbs the
//! random stream of another — runs stay comparable across code changes.

use codec::rng::Xoshiro256pp;
use std::time::Duration;

/// A deterministic random source for one simulation component.
///
/// Wraps the workspace's in-repo xoshiro256++ generator
/// ([`codec::rng::Xoshiro256pp`]) and adds simulation-flavoured helpers
/// (durations with jitter, exponential inter-arrival times, Bernoulli
/// trials).
///
/// # Example
///
/// ```rust
/// use ph_netsim::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.range_u64(0..100), b.range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::from_seed(seed),
        }
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// The child stream depends on both the parent's state and the label, so
    /// distinct labels yield distinct streams while the derivation itself is
    /// deterministic.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let mixed = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::from_seed(mixed)
    }

    /// Stateless lane derivation: the generator for lane `index` under
    /// `seed`, independent of any parent generator's mutable state.
    ///
    /// Unlike [`SimRng::fork`], which advances the parent, `lane` is a pure
    /// function of `(seed, index)`. Sharded engines use it to give every
    /// node (or region) its own stream so the draw sequence observed by one
    /// lane is unaffected by how many other lanes exist or in what order
    /// they are created.
    pub fn lane(seed: u64, index: u64) -> SimRng {
        SimRng::from_seed(seed).fork(index)
    }

    /// Uniform `u64` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(
            range.start < range.end,
            "range_u64 requires a non-empty range"
        );
        range.start + self.inner.bounded_u64(range.end - range.start)
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `f64` in `range` (half-open).
    pub fn range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + self.inner.unit_f64() * (range.end - range.start)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.unit_f64() < p
    }

    /// Uniform duration in `[0, max]`.
    pub fn duration_up_to(&mut self, max: Duration) -> Duration {
        if max.is_zero() {
            return Duration::ZERO;
        }
        Duration::from_micros(self.inner.bounded_u64(max.as_micros() as u64 + 1))
    }

    /// Uniform duration in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn duration_between(&mut self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo <= hi, "duration_between requires lo <= hi");
        lo + self.duration_up_to(hi - lo)
    }

    /// `base` plus a symmetric uniform jitter in `[-jitter, +jitter]`,
    /// floored at zero.
    pub fn jittered(&mut self, base: Duration, jitter: Duration) -> Duration {
        if jitter.is_zero() {
            return base;
        }
        let j = jitter.as_micros() as i64;
        let offset = self.inner.bounded_u64(2 * j as u64 + 1) as i64 - j;
        let micros = base.as_micros() as i64 + offset;
        Duration::from_micros(micros.max(0) as u64)
    }

    /// Exponentially distributed duration with the given mean (inter-arrival
    /// times of a Poisson process).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        assert!(!mean.is_zero(), "exponential mean must be non-zero");
        let u: f64 = self.inner.unit_f64().max(f64::EPSILON);
        Duration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.bounded_u64(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0..1_000_000), b.range_u64(0..1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_per_label() {
        let mut parent1 = SimRng::from_seed(7);
        let mut parent2 = SimRng::from_seed(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.range_u64(0..u64::MAX), c2.range_u64(0..u64::MAX));
    }

    #[test]
    fn lanes_are_pure_in_seed_and_index() {
        let mut a = SimRng::lane(2008, 17);
        let mut b = SimRng::lane(2008, 17);
        for _ in 0..50 {
            assert_eq!(a.range_u64(0..u64::MAX), b.range_u64(0..u64::MAX));
        }
        let mut c = SimRng::lane(2008, 18);
        let x = SimRng::lane(2008, 17).range_u64(0..u64::MAX);
        assert_ne!(x, c.range_u64(0..u64::MAX), "adjacent lanes must differ");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn duration_between_bounds() {
        let mut rng = SimRng::from_seed(3);
        let lo = Duration::from_millis(10);
        let hi = Duration::from_millis(20);
        for _ in 0..200 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d <= hi, "{d:?} out of bounds");
        }
    }

    #[test]
    fn jittered_never_negative() {
        let mut rng = SimRng::from_seed(4);
        for _ in 0..200 {
            let d = rng.jittered(Duration::from_millis(1), Duration::from_millis(10));
            assert!(d <= Duration::from_millis(11));
        }
    }

    #[test]
    fn jittered_zero_jitter_is_identity() {
        let mut rng = SimRng::from_seed(4);
        assert_eq!(
            rng.jittered(Duration::from_millis(5), Duration::ZERO),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::from_seed(5);
        let mean = Duration::from_secs(2);
        let n = 4000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!(
            (observed - 2.0).abs() < 0.2,
            "observed mean {observed} too far from 2.0"
        );
    }

    #[test]
    fn pick_and_shuffle() {
        let mut rng = SimRng::from_seed(6);
        let empty: [u8; 0] = [];
        assert_eq!(rng.pick(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.pick(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn duration_up_to_zero() {
        let mut rng = SimRng::from_seed(9);
        assert_eq!(rng.duration_up_to(Duration::ZERO), Duration::ZERO);
    }
}
