//! Deterministic fault injection: frame loss, burst episodes, connection
//! refusal, link kills and daemon crash windows.
//!
//! The thesis's environment is an ad-hoc radio neighborhood where "any
//! remote device may be unreachable" at any moment (§5.1) — Table 8 was
//! measured over real, flaky Bluetooth 1.2 links. A [`FaultPlan`] lets a
//! scenario reproduce that hostility *deterministically*: every decision is
//! drawn from a dedicated seeded [`SimRng`] stream in serial event order, so
//! a faulted run has a bit-stable digest for any `--threads N`.
//!
//! Loss is modelled per technology with a two-state Gilbert model: links are
//! normally in the *good* state where frames are lost independently with
//! `frame_loss` probability; with probability `burst_enter` a frame arrival
//! flips the channel into the *bad* state where `burst_loss` applies until a
//! `burst_exit` draw ends the episode. All draws go through
//! [`SimRng::chance`], which consumes **no** randomness for probabilities of
//! zero or one — an all-zero plan therefore leaves every RNG stream
//! untouched and reproduces the fault-free run bit-for-bit (property-tested
//! in the harness).

use std::fmt;
use std::time::Duration;

use crate::radio::Technology;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Index of a technology into per-technology fault state.
pub(crate) fn tech_slot(tech: Technology) -> usize {
    match tech {
        Technology::Bluetooth => 0,
        Technology::Wlan => 1,
        Technology::Gprs => 2,
    }
}

/// Fault probabilities for one technology. All fields default to zero
/// (no faults); probabilities are clamped to `[0, 1]` at draw time by
/// [`SimRng::chance`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct FaultProfile {
    /// Independent per-frame loss probability in the good channel state.
    pub frame_loss: f64,
    /// Probability (per frame arrival) of entering a burst-loss episode.
    pub burst_enter: f64,
    /// Probability (per frame arrival while bursting) that the episode ends.
    pub burst_exit: f64,
    /// Per-frame loss probability while a burst episode is active.
    pub burst_loss: f64,
    /// Probability that a connection attempt is refused outright.
    pub connect_refuse: f64,
    /// Probability (per frame arrival) that the whole link dies mid-flight.
    pub link_kill: f64,
}

impl FaultProfile {
    /// No faults at all.
    pub const NONE: FaultProfile = FaultProfile {
        frame_loss: 0.0,
        burst_enter: 0.0,
        burst_exit: 0.0,
        burst_loss: 0.0,
        connect_refuse: 0.0,
        link_kill: 0.0,
    };

    /// Whether every probability is zero (the profile can never fire).
    pub fn is_inert(&self) -> bool {
        self.frame_loss <= 0.0
            && self.burst_enter <= 0.0
            && self.burst_loss <= 0.0
            && self.connect_refuse <= 0.0
            && self.link_kill <= 0.0
    }

    /// Advances the Gilbert channel state and samples whether one frame is
    /// lost. Draws nothing from `rng` when the profile is inert.
    pub fn frame_lost(&self, burst: &mut BurstState, rng: &mut SimRng) -> bool {
        if burst.bad {
            if rng.chance(self.burst_exit) {
                burst.bad = false;
            }
        } else if rng.chance(self.burst_enter) {
            burst.bad = true;
        }
        if burst.bad && rng.chance(self.burst_loss) {
            return true;
        }
        rng.chance(self.frame_loss)
    }
}

/// Mutable two-state Gilbert channel state (per technology, per cluster).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BurstState {
    /// Whether the channel is currently inside a burst-loss episode.
    pub bad: bool,
}

/// One scheduled daemon outage: the node's daemon dies at `down_from` and
/// restarts (with empty soft state) at `up_at`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// Raw id of the crashing node (matches `NodeId::raw`).
    pub node: u32,
    /// When the daemon process dies.
    pub down_from: SimTime,
    /// When it restarts.
    pub up_at: SimTime,
}

/// A complete fault schedule for one simulation run: per-technology loss
/// profiles plus scheduled daemon crash windows.
///
/// Built fluently and handed to a
/// [`RadioEnv`](crate::radio::RadioEnv):
///
/// ```rust
/// use ph_netsim::fault::{FaultPlan, FaultProfile};
/// use ph_netsim::Technology;
///
/// let plan = FaultPlan::none()
///     .with_profile(
///         Technology::Bluetooth,
///         FaultProfile {
///             frame_loss: 0.10,
///             burst_enter: 0.02,
///             burst_exit: 0.25,
///             burst_loss: 0.60,
///             ..FaultProfile::NONE
///         },
///     );
/// assert!(!plan.is_inert());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    profiles: [FaultProfile; 3],
    crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan with no faults: zero probabilities, no crash windows.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the fault profile of one technology (builder style).
    pub fn with_profile(mut self, tech: Technology, profile: FaultProfile) -> Self {
        self.profiles[tech_slot(tech)] = profile;
        self
    }

    /// Schedules a daemon crash window for `node` (builder style). The
    /// window starts `down_from` after scenario start and lasts `outage`.
    pub fn with_crash(mut self, node: u32, down_from: Duration, outage: Duration) -> Self {
        let from = SimTime::ZERO + down_from;
        self.crashes.push(CrashWindow {
            node,
            down_from: from,
            up_at: from + outage,
        });
        self
    }

    /// The fault profile of one technology.
    pub fn profile(&self, tech: Technology) -> &FaultProfile {
        &self.profiles[tech_slot(tech)]
    }

    /// The scheduled daemon outages.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Whether the plan can never fire: all probabilities zero and no crash
    /// windows. Inert plans draw no randomness and leave digests untouched.
    pub fn is_inert(&self) -> bool {
        self.profiles.iter().all(FaultProfile::is_inert) && self.crashes.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inert() {
            return f.write_str("no faults");
        }
        for tech in Technology::ALL {
            let p = self.profile(tech);
            if !p.is_inert() {
                write!(
                    f,
                    "[{tech}: loss={} burst={}/{}@{} refuse={} kill={}] ",
                    p.frame_loss,
                    p.burst_enter,
                    p.burst_exit,
                    p.burst_loss,
                    p.connect_refuse,
                    p.link_kill
                )?;
            }
        }
        write!(f, "crashes={}", self.crashes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_draws_no_randomness() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        let mut rng = SimRng::from_seed(1);
        let mut witness = SimRng::from_seed(1);
        let mut burst = BurstState::default();
        for tech in Technology::ALL {
            for _ in 0..100 {
                assert!(!plan.profile(tech).frame_lost(&mut burst, &mut rng));
            }
        }
        // The stream is untouched: both produce the same next value.
        assert_eq!(rng.range_u64(0..u64::MAX), witness.range_u64(0..u64::MAX));
    }

    #[test]
    fn burst_state_machine_enters_and_exits() {
        let p = FaultProfile {
            burst_enter: 1.0,
            burst_exit: 1.0,
            burst_loss: 1.0,
            ..FaultProfile::NONE
        };
        let mut rng = SimRng::from_seed(2);
        let mut burst = BurstState::default();
        // First arrival: enters the burst and loses the frame.
        assert!(p.frame_lost(&mut burst, &mut rng));
        assert!(burst.bad);
        // Next arrival: exits the burst first (exit prob 1), then no loss.
        assert!(!p.frame_lost(&mut burst, &mut rng));
        assert!(!burst.bad);
    }

    #[test]
    fn certain_frame_loss_always_fires() {
        let p = FaultProfile {
            frame_loss: 1.0,
            ..FaultProfile::NONE
        };
        let mut rng = SimRng::from_seed(3);
        let mut burst = BurstState::default();
        for _ in 0..10 {
            assert!(p.frame_lost(&mut burst, &mut rng));
        }
    }

    #[test]
    fn plan_builder_sets_profiles_and_crashes() {
        let plan = FaultPlan::none()
            .with_profile(
                Technology::Wlan,
                FaultProfile {
                    connect_refuse: 0.5,
                    ..FaultProfile::NONE
                },
            )
            .with_crash(3, Duration::from_secs(10), Duration::from_secs(5));
        assert!(!plan.is_inert());
        assert_eq!(plan.profile(Technology::Wlan).connect_refuse, 0.5);
        assert!(plan.profile(Technology::Bluetooth).is_inert());
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.crashes()[0].node, 3);
        assert_eq!(plan.crashes()[0].down_from, SimTime::from_secs(10));
        assert_eq!(plan.crashes()[0].up_at, SimTime::from_secs(15));
        let shown = plan.to_string();
        assert!(shown.contains("WLAN"), "{shown}");
        assert!(shown.contains("crashes=1"), "{shown}");
    }

    #[test]
    fn crash_only_plan_is_not_inert() {
        let plan = FaultPlan::none().with_crash(0, Duration::ZERO, Duration::from_secs(1));
        assert!(!plan.is_inert());
        assert_eq!(FaultPlan::none().to_string(), "no faults");
    }
}
