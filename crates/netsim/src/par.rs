//! Zero-dependency fork/join helpers for the deterministic epoch engine.
//!
//! The simulator parallelises only *pure* per-node work (mobility position
//! sampling, grid neighbor queries) inside a timestamp batch, then merges
//! the results **in node-id order** before any state mutation or trace
//! record happens. These helpers encode that discipline:
//!
//! * work is split into contiguous index chunks, one scoped worker per
//!   chunk ([`std::thread::scope`] — no `unsafe`, no external crates);
//! * [`map_indexed`] joins workers in spawn order, so the merged output is
//!   exactly `f(0), f(1), …, f(n-1)` regardless of which worker finished
//!   first — the caller observes a serial-order result;
//! * a worker count of 1 (or trivially small inputs) short-circuits to a
//!   plain loop, so the serial and parallel code paths share one body.
//!
//! Determinism therefore does not depend on scheduling luck: as long as `f`
//! itself is a pure function of its index, the output is bit-identical to
//! a serial evaluation. The trace-digest equality tests in `ph-harness`
//! verify this end to end.

use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

/// Number of hardware threads available to the process (at least 1).
///
/// Cached: `std::thread::available_parallelism` re-reads cgroup limits on
/// every call on Linux (tens of microseconds), and the epoch engine asks
/// once per timestamp batch — uncached, "auto" was slower than serial.
pub fn available_threads() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves a user-requested worker count: `0` means "auto" (use
/// [`available_threads`]), anything else is taken literally. Oversubscribing
/// is allowed — useful for proving digest equality on small hosts.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Minimum items handed to one worker. Scoped spawns cost tens of
/// microseconds each, so fanning out fewer items than this per worker is
/// a net loss; small inputs degrade gracefully toward the serial path.
/// Worker count never changes results — only how the index range is cut.
const MIN_ITEMS_PER_WORKER: usize = 64;

/// Number of workers actually worth spawning for `n` items.
fn worker_count(n: usize, threads: usize) -> usize {
    effective_threads(threads)
        .min(n.div_ceil(MIN_ITEMS_PER_WORKER))
        .max(1)
}

/// Contiguous chunk length that spreads `n` items over `workers`.
fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers.max(1)).max(1)
}

/// Applies `f(index, &mut item)` to every item, fanned across at most
/// `threads` scoped workers (0 = auto). Chunks are contiguous, so each
/// worker owns a disjoint index range; `f` must not depend on cross-item
/// ordering — it runs concurrently.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = worker_count(items.len(), threads);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = chunk_len(items.len(), workers);
    thread::scope(|s| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (j, item) in chunk_items.iter_mut().enumerate() {
                    f(base + j, item);
                }
            });
        }
    });
}

/// Applies `f(index, &mut a[index], &mut b[index])` over two equal-length
/// slices, fanned across at most `threads` scoped workers (0 = auto) in
/// contiguous chunks. Used to write per-item results (`b`) computed from
/// per-item state (`a`) without sharing either slice between workers.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn zip_for_each_mut<T, U, F>(a: &mut [T], b: &mut [U], threads: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T, &mut U) + Sync,
{
    assert_eq!(a.len(), b.len(), "zip_for_each_mut: length mismatch");
    let workers = worker_count(a.len(), threads);
    if workers <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let chunk = chunk_len(a.len(), workers);
    thread::scope(|s| {
        for (ci, (ca, cb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (j, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    f(base + j, x, y);
                }
            });
        }
    });
}

/// Evaluates `f(0), …, f(n-1)` across at most `threads` scoped workers
/// (0 = auto) and returns the results **in index order** — workers are
/// joined in spawn order, so the merge is deterministic even though the
/// evaluation is not.
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(n, threads);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_len(n, workers);
    let mut out = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                let f = &f;
                s.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("epoch worker panicked"));
        }
    });
    out
}

/// Like [`map_indexed`], but each worker first builds private scratch
/// state with `init` and threads it through its chunk — the pattern for
/// queries that reuse a gather buffer without allocating per item. Results
/// are still merged in index order.
pub fn map_indexed_with<S, R, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = worker_count(n, threads);
    if workers <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = chunk_len(n, workers);
    let mut out = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                let (init, f) = (&init, &f);
                s.spawn(move || {
                    let mut state = init();
                    (start..end).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("epoch worker panicked"));
        }
    });
    out
}

/// Splits `items` into contiguous chunks at the given `bounds` (ascending,
/// starting at 0 and ending at `items.len()`) and runs
/// `f(chunk_index, base_offset, chunk)` on one scoped worker per chunk,
/// returning the per-chunk results **in chunk order** (spawn-order join).
///
/// This is the outbox-carrying worker variant used by the parallel
/// lane-epoch engine: each chunk is a disjoint `&mut` range of per-node
/// state, `f` executes that range's events locally and returns the chunk's
/// outbox (buffered cross-lane effects), and the caller commits the merged
/// outboxes serially in canonical order. A single chunk short-circuits to a
/// plain call, so the serial and parallel engines share one body.
///
/// # Panics
///
/// Panics if `bounds` is not an ascending partition of `items`.
pub fn map_chunks_mut<T, R, F>(items: &mut [T], bounds: &[usize], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, &mut [T]) -> R + Sync,
{
    let payloads = vec![(); bounds.len().saturating_sub(1)];
    map_chunks_mut_with(items, bounds, payloads, |ci, base, chunk, ()| {
        f(ci, base, chunk)
    })
}

/// Like [`map_chunks_mut`], but additionally moves one owned payload into
/// each worker (`payloads[i]` goes to chunk `i`). The lane-epoch engine uses
/// this to hand each worker its share of the drained event batch *by value*
/// alongside the `&mut` node range the events target.
///
/// # Panics
///
/// Panics if `bounds` is not an ascending partition of `items` or
/// `payloads.len() != bounds.len() - 1`.
pub fn map_chunks_mut_with<T, P, R, F>(
    items: &mut [T],
    bounds: &[usize],
    payloads: Vec<P>,
    f: F,
) -> Vec<R>
where
    T: Send,
    P: Send,
    R: Send,
    F: Fn(usize, usize, &mut [T], P) -> R + Sync,
{
    assert!(
        bounds.len() >= 2
            && bounds[0] == 0
            && *bounds.last().unwrap() == items.len()
            && bounds.windows(2).all(|w| w[0] <= w[1]),
        "map_chunks_mut: bounds must ascend from 0 to items.len()"
    );
    let chunks = bounds.len() - 1;
    assert_eq!(
        payloads.len(),
        chunks,
        "map_chunks_mut_with: one payload per chunk"
    );
    let mut payloads = payloads;
    if chunks == 1 {
        let p = payloads.pop().expect("one payload");
        return vec![f(0, 0, items, p)];
    }
    let mut out = Vec::with_capacity(chunks);
    thread::scope(|s| {
        let mut rest = items;
        let handles: Vec<_> = payloads
            .into_iter()
            .enumerate()
            .map(|(ci, payload)| {
                let (chunk, tail) =
                    std::mem::take(&mut rest).split_at_mut(bounds[ci + 1] - bounds[ci]);
                rest = tail;
                let f = &f;
                s.spawn(move || f(ci, bounds[ci], chunk, payload))
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("epoch worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_indexed_matches_serial_for_any_thread_count() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 4, 7, 16, 200] {
            assert_eq!(
                map_indexed(97, threads, |i| i * i),
                serial,
                "threads={threads}"
            );
        }
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let calls = AtomicUsize::new(0);
        let mut items: Vec<u64> = vec![0; 1003];
        for_each_mut(&mut items, 4, |i, item| {
            *item = i as u64 + 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1003);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn zip_for_each_mut_pairs_indices() {
        let mut state: Vec<u64> = (0..501).collect();
        let mut out: Vec<u64> = vec![0; 501];
        zip_for_each_mut(&mut state, &mut out, 5, |i, s, o| {
            *s += 1;
            *o = *s * 2 + i as u64;
        });
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i as u64 + 1) * 2 + i as u64));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_for_each_mut_rejects_uneven_slices() {
        let mut a = [1u8; 3];
        let mut b = [1u8; 4];
        zip_for_each_mut(&mut a, &mut b, 2, |_, _, _| {});
    }

    #[test]
    fn map_chunks_mut_partitions_disjointly_in_order() {
        let mut items: Vec<u64> = (0..100).collect();
        let bounds = [0usize, 17, 17, 60, 100];
        let got = map_chunks_mut(&mut items, &bounds, |ci, base, chunk| {
            for (j, item) in chunk.iter_mut().enumerate() {
                assert_eq!(*item, (base + j) as u64, "chunk {ci} sees its own range");
                *item += 1000;
            }
            (ci, base, chunk.len())
        });
        assert_eq!(got, vec![(0, 0, 17), (1, 17, 0), (2, 17, 43), (3, 60, 40)]);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1000));
        // Single chunk runs inline and still reports its result.
        let whole = map_chunks_mut(&mut items, &[0, 100], |ci, base, chunk| {
            (ci, base, chunk.len())
        });
        assert_eq!(whole, vec![(0, 0, 100)]);
    }

    #[test]
    fn map_chunks_mut_with_moves_one_payload_per_chunk() {
        let mut items: Vec<u64> = (0..10).collect();
        let bounds = [0usize, 4, 10];
        // Payloads are owned (non-Copy) and consumed by their worker.
        let payloads = vec![vec![1u64], vec![2, 3]];
        let got = map_chunks_mut_with(&mut items, &bounds, payloads, |ci, base, chunk, p| {
            (ci, base, chunk.len(), p.iter().sum::<u64>())
        });
        assert_eq!(got, vec![(0, 0, 4, 1), (1, 4, 6, 5)]);
        // Single chunk runs inline.
        let got = map_chunks_mut_with(
            &mut items,
            &[0, 10],
            vec![String::from("x")],
            |_, _, c, p| (c.len(), p),
        );
        assert_eq!(got, vec![(10, String::from("x"))]);
    }

    #[test]
    #[should_panic(expected = "one payload per chunk")]
    fn map_chunks_mut_with_rejects_payload_mismatch() {
        let mut items = [1u8; 4];
        map_chunks_mut_with(&mut items, &[0, 2, 4], vec![()], |_, _, _, ()| ());
    }

    #[test]
    #[should_panic(expected = "bounds must ascend")]
    fn map_chunks_mut_rejects_bad_bounds() {
        let mut items = [1u8; 4];
        map_chunks_mut(&mut items, &[0, 3], |_, _, _| ());
    }

    #[test]
    fn map_indexed_with_reuses_worker_scratch() {
        // The scratch must be private per worker: a shared one would race.
        let got = map_indexed_with(200, 4, Vec::new, |scratch: &mut Vec<usize>, i| {
            scratch.push(i);
            scratch.len()
        });
        // Each worker's scratch grows from 1 within its contiguous chunk.
        assert_eq!(got[0], 1);
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1 || w[1] == 1));
        let serial = map_indexed_with(200, 1, Vec::new, |s: &mut Vec<usize>, i| {
            s.push(i);
            i
        });
        assert_eq!(serial, (0..200).collect::<Vec<_>>());
    }
}
