//! Message-sequence tracing.
//!
//! The thesis documents its reference implementation with message sequence
//! charts (Figures 11–17). To *reproduce a figure* we record every protocol
//! message exchanged during a simulated operation into a [`Trace`], assert
//! the recorded sequence in tests, and render it as an ASCII MSC from the
//! `repro msc` harness command.

use codec::{DecodeError, Wire};
use std::fmt;

use crate::time::SimTime;

/// One traced protocol event: a labelled message from one actor to another.
///
/// Actors are free-form strings (device names); a self-directed event
/// (`from == to`) represents a local action such as "display list".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Originating actor.
    pub from: String,
    /// Receiving actor.
    pub to: String,
    /// Message label, e.g. `PS_GETPROFILE` or `NO_MEMBERS_YET`.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.from == self.to {
            write!(f, "[{}] {}: {}", self.at, self.from, self.label)
        } else {
            write!(
                f,
                "[{}] {} -> {}: {}",
                self.at, self.from, self.to, self.label
            )
        }
    }
}

// SimTime travels on the wire as its microsecond count.
impl Wire for SimTime {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_micros().encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        u64::decode(input).map(SimTime::from_micros)
    }
}

impl Wire for TraceEvent {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.at.encode_to(out);
        self.from.encode_to(out);
        self.to.encode_to(out);
        self.label.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TraceEvent {
            at: SimTime::decode(input)?,
            from: String::decode(input)?,
            to: String::decode(input)?,
            label: String::decode(input)?,
        })
    }
}

impl Wire for Trace {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.events.len() as u32).encode_to(out);
        for e in &self.events {
            e.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = codec::read_len(input)?;
        let mut events = Vec::with_capacity(n.min(input.len()));
        for _ in 0..n {
            events.push(TraceEvent::decode(input)?);
        }
        Ok(Trace { events })
    }
}

/// An append-only log of [`TraceEvent`]s for one simulation run.
///
/// # Example
///
/// ```rust
/// use ph_netsim::{Trace, SimTime};
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_secs(1), "client", "server", "PS_GETPROFILE");
/// trace.record(SimTime::from_secs(2), "server", "client", "PROFILE");
/// assert_eq!(trace.labels(), vec!["PS_GETPROFILE", "PROFILE"]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        at: SimTime,
        from: impl Into<String>,
        to: impl Into<String>,
        label: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            at,
            from: from.into(),
            to: to.into(),
            label: label.into(),
        });
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sequence of labels, in recording order.
    pub fn labels(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.label.as_str()).collect()
    }

    /// Events exchanged between two specific actors (either direction).
    pub fn between<'a>(&'a self, a: &str, b: &str) -> Vec<&'a TraceEvent> {
        self.events
            .iter()
            .filter(|e| (e.from == a && e.to == b) || (e.from == b && e.to == a))
            .collect()
    }

    /// Labels of messages sent by `actor`.
    pub fn sent_by<'a>(&'a self, actor: &str) -> Vec<&'a str> {
        self.events
            .iter()
            .filter(|e| e.from == actor && e.to != actor)
            .map(|e| e.label.as_str())
            .collect()
    }

    /// Whether `needle` labels occur in order (not necessarily contiguously).
    pub fn contains_subsequence(&self, needle: &[&str]) -> bool {
        let mut it = needle.iter();
        let mut want = match it.next() {
            Some(w) => *w,
            None => return true,
        };
        for e in &self.events {
            if e.label == want {
                match it.next() {
                    Some(w) => want = *w,
                    None => return true,
                }
            }
        }
        false
    }

    /// Renders the trace as an ASCII message sequence chart with one column
    /// per actor (in order of first appearance), mirroring the thesis's MSC
    /// figures.
    pub fn render_msc(&self) -> String {
        let mut actors: Vec<&str> = Vec::new();
        for e in &self.events {
            for actor in [e.from.as_str(), e.to.as_str()] {
                if !actors.contains(&actor) {
                    actors.push(actor);
                }
            }
        }
        if actors.is_empty() {
            return String::from("(empty trace)\n");
        }
        let col_width = actors.iter().map(|a| a.len()).max().unwrap_or(0).max(12) + 4;
        let column = |actor: &str| actors.iter().position(|a| *a == actor).unwrap();
        let center = |i: usize| 10 + i * col_width + col_width / 2;

        let mut out = String::new();
        // Header row.
        out.push_str(&" ".repeat(10));
        for a in &actors {
            let pad = col_width - a.len();
            let left = pad / 2;
            out.push_str(&" ".repeat(left));
            out.push_str(a);
            out.push_str(&" ".repeat(pad - left));
        }
        out.push('\n');
        for e in &self.events {
            let (ci, cj) = (column(&e.from), column(&e.to));
            let time = format!("{:>8} ", e.at);
            let mut line: Vec<char> = format!("{}{}", time, " ".repeat(actors.len() * col_width))
                .chars()
                .collect();
            for (i, _) in actors.iter().enumerate() {
                line[center(i)] = '|';
            }
            if ci == cj {
                // Local action: annotate beside the actor's lifeline.
                let start = center(ci) + 2;
                for (k, ch) in format!("* {}", e.label).chars().enumerate() {
                    if start + k < line.len() {
                        line[start + k] = ch;
                    }
                }
            } else {
                let (lo, hi) = if ci < cj {
                    (center(ci), center(cj))
                } else {
                    (center(cj), center(ci))
                };
                for cell in line.iter_mut().take(hi).skip(lo + 1) {
                    *cell = '-';
                }
                if ci < cj {
                    line[hi - 1] = '>';
                } else {
                    line[lo + 1] = '<';
                }
                // Overlay the label mid-arrow.
                let label: Vec<char> = e.label.chars().collect();
                let mid = (lo + hi) / 2;
                let start = mid.saturating_sub(label.len() / 2).max(lo + 2);
                for (k, ch) in label.iter().enumerate() {
                    let pos = start + k;
                    if pos < hi - 1 {
                        line[pos] = *ch;
                    }
                }
            }
            out.push_str(line.iter().collect::<String>().trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "client", "server1", "PS_GETPROFILE");
        t.record(SimTime::from_secs(2), "server1", "client", "PROFILE_INFO");
        t.record(SimTime::from_secs(3), "client", "client", "DISPLAY");
        t
    }

    #[test]
    fn labels_in_order() {
        assert_eq!(
            sample().labels(),
            vec!["PS_GETPROFILE", "PROFILE_INFO", "DISPLAY"]
        );
    }

    #[test]
    fn between_filters_pairs() {
        let t = sample();
        assert_eq!(t.between("client", "server1").len(), 2);
        assert_eq!(t.between("client", "nobody").len(), 0);
    }

    #[test]
    fn sent_by_excludes_local_actions() {
        let t = sample();
        assert_eq!(t.sent_by("client"), vec!["PS_GETPROFILE"]);
    }

    #[test]
    fn subsequence_matching() {
        let t = sample();
        assert!(t.contains_subsequence(&["PS_GETPROFILE", "DISPLAY"]));
        assert!(t.contains_subsequence(&[]));
        assert!(!t.contains_subsequence(&["DISPLAY", "PS_GETPROFILE"]));
        assert!(!t.contains_subsequence(&["MISSING"]));
    }

    #[test]
    fn msc_renders_all_actors_and_labels() {
        let msc = sample().render_msc();
        assert!(msc.contains("client"));
        assert!(msc.contains("server1"));
        assert!(msc.contains("PS_GETPROFILE"));
        assert!(msc.contains("* DISPLAY"));
    }

    #[test]
    fn msc_empty_trace() {
        assert_eq!(Trace::new().render_msc(), "(empty trace)\n");
    }

    #[test]
    fn event_display_forms() {
        let t = sample();
        let arrow = t.events()[0].to_string();
        assert!(arrow.contains("client -> server1"));
        let local = t.events()[2].to_string();
        assert!(local.contains("client: DISPLAY"));
    }

    #[test]
    fn trace_wire_round_trip() {
        let t = sample();
        let back = Trace::decode_exact(&t.encode()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn trace_decode_rejects_truncation() {
        let t = sample();
        let frame = t.encode();
        assert!(Trace::decode_exact(&frame[..frame.len() - 1]).is_err());
    }
}
