//! Message-sequence tracing.
//!
//! The thesis documents its reference implementation with message sequence
//! charts (Figures 11–17). To *reproduce a figure* we record every protocol
//! message exchanged during a simulated operation into a [`Trace`], assert
//! the recorded sequence in tests, and render it as an ASCII MSC from the
//! `repro msc` harness command.
//!
//! At evaluation scale (hundreds to a thousand nodes) a naive trace — three
//! owned `String`s per event in an unbounded `Vec` — dominates both heap
//! traffic and memory. The trace therefore stores events *interned*: actor
//! and label strings live once in a string pool and each event is a fixed
//! 20-byte record of [`ActorId`]/[`LabelId`] handles. The event log is a
//! ring buffer with a configurable capacity ([`Trace::with_capacity`]);
//! when full, the oldest events are evicted but the always-on counters in
//! [`TraceStats`] keep counting, so aggregate figures survive even when the
//! verbatim log does not.

use codec::{DecodeError, Wire};
use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::time::SimTime;

/// Interned handle for an actor (device) name in a [`Trace`]'s string pool.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

/// Interned handle for a message label in a [`Trace`]'s string pool.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(u32);

/// One traced protocol event: a labelled message from one actor to another.
///
/// Actors are free-form strings (device names); a self-directed event
/// (`from == to`) represents a local action such as "display list".
///
/// This is the *resolved* (owned-string) view handed out by query methods;
/// internally the trace stores compact interned records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Originating actor.
    pub from: String,
    /// Receiving actor.
    pub to: String,
    /// Message label, e.g. `PS_GETPROFILE` or `NO_MEMBERS_YET`.
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.from == self.to {
            write!(f, "[{}] {}: {}", self.at, self.from, self.label)
        } else {
            write!(
                f,
                "[{}] {} -> {}: {}",
                self.at, self.from, self.to, self.label
            )
        }
    }
}

// SimTime travels on the wire as its microsecond count.
impl Wire for SimTime {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_micros().encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        u64::decode(input).map(SimTime::from_micros)
    }
}

impl Wire for TraceEvent {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.at.encode_to(out);
        self.from.encode_to(out);
        self.to.encode_to(out);
        self.label.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TraceEvent {
            at: SimTime::decode(input)?,
            from: String::decode(input)?,
            to: String::decode(input)?,
            label: String::decode(input)?,
        })
    }
}

// The wire format is unchanged from the pre-interned trace: a `u32` count of
// retained events followed by each event's resolved (string) form. Decoding
// re-records into a fresh unbounded trace, re-interning as it goes.
impl Wire for Trace {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.events.len() as u32).encode_to(out);
        for e in &self.events {
            e.at.encode_to(out);
            encode_str(self.pool.get(e.from.0), out);
            encode_str(self.pool.get(e.to.0), out);
            encode_str(self.pool.get(e.label.0), out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = codec::read_len(input)?;
        let mut trace = Trace::new();
        for _ in 0..n {
            let e = TraceEvent::decode(input)?;
            trace.record(e.at, &e.from, &e.to, &e.label);
        }
        Ok(trace)
    }
}

/// Encodes a borrowed string exactly like `String`'s `Wire` impl.
fn encode_str(s: &str, out: &mut Vec<u8>) {
    (s.len() as u32).encode_to(out);
    out.extend_from_slice(s.as_bytes());
}

/// Always-on counters for one simulation run.
///
/// These are cheap enough to maintain at any scale: aggregate figures remain
/// exact even when the bounded event ring has evicted the verbatim log. The
/// event-kind counters are updated by [`Trace::record`]; the frame and
/// daemon-level counters are bumped by the simulation driver (the peerhood
/// `Cluster`) via [`Trace::stats_mut`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events ever recorded (including evicted ones).
    pub events_recorded: u64,
    /// Events evicted from the bounded ring.
    pub events_dropped: u64,
    /// Recorded events with distinct from/to actors (messages on the wire).
    pub messages: u64,
    /// Recorded self-directed events (local actions).
    pub local_events: u64,
    /// Frames handed to the radio layer.
    pub frames_sent: u64,
    /// Frames that arrived at their destination.
    pub frames_delivered: u64,
    /// Frames lost to range, link failure or injected faults (data and
    /// SDP query/reply frames alike).
    pub frames_dropped: u64,
    /// Payload bytes handed to the radio layer.
    pub bytes_sent: u64,
    /// Payload bytes that arrived.
    pub bytes_delivered: u64,
    /// Discovery (inquiry) rounds started.
    pub inquiries: u64,
    /// Devices found by discovery rounds.
    pub inquiry_responses: u64,
    /// Connection attempts initiated.
    pub connects_attempted: u64,
    /// Connections successfully established.
    pub connects_ok: u64,
    /// Connection attempts that failed.
    pub connects_failed: u64,
    /// Seamless-connectivity handovers performed.
    pub handovers: u64,
    /// Remote service-list queries issued.
    pub service_queries: u64,
    /// Of `connects_failed`: attempts that died because the peer moved out
    /// of range *mid-setup* (after paging had begun), as opposed to
    /// range/refusal checks at initiation.
    pub connects_lost_setup: u64,
    /// Recovery: operations re-issued after a timeout or failure (backoff
    /// retries of connections, service queries and community requests).
    pub retries: u64,
    /// Recovery: deadlines that expired (connection attempts and service
    /// queries that never answered in time).
    pub timeouts: u64,
    /// Recovery: operations abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Recovery: connections successfully resumed (make-before-break
    /// handover rebinds after link death).
    pub resumed: u64,
    /// Gossip: full payloads pushed eagerly along the broadcast tree.
    pub gossip_eager: u64,
    /// Gossip: lazy `IHAVE` id announcements sent.
    pub gossip_lazy: u64,
    /// Gossip: `GRAFT` repair requests sent for missing payloads.
    pub gossip_graft: u64,
    /// Gossip: `PRUNE` demotions sent on duplicate pushes.
    pub gossip_prune: u64,
    /// Gossip: duplicate pushes received (dissemination overhead).
    pub gossip_duplicate: u64,
}

impl TraceStats {
    /// Adds another stats block counter-wise. Every field is a monotone sum,
    /// so folding per-worker deltas in *any* order reproduces the serial
    /// totals exactly — the property the parallel epoch engine's outbox
    /// commit relies on. Callers merging worker deltas must leave
    /// `events_recorded`/`events_dropped`/`messages`/`local_events` at zero
    /// in the delta: those four are owned by the trace-record replay.
    pub fn add(&mut self, d: &TraceStats) {
        self.events_recorded += d.events_recorded;
        self.events_dropped += d.events_dropped;
        self.messages += d.messages;
        self.local_events += d.local_events;
        self.frames_sent += d.frames_sent;
        self.frames_delivered += d.frames_delivered;
        self.frames_dropped += d.frames_dropped;
        self.bytes_sent += d.bytes_sent;
        self.bytes_delivered += d.bytes_delivered;
        self.inquiries += d.inquiries;
        self.inquiry_responses += d.inquiry_responses;
        self.connects_attempted += d.connects_attempted;
        self.connects_ok += d.connects_ok;
        self.connects_failed += d.connects_failed;
        self.handovers += d.handovers;
        self.service_queries += d.service_queries;
        self.connects_lost_setup += d.connects_lost_setup;
        self.retries += d.retries;
        self.timeouts += d.timeouts;
        self.gave_up += d.gave_up;
        self.resumed += d.resumed;
        self.gossip_eager += d.gossip_eager;
        self.gossip_lazy += d.gossip_lazy;
        self.gossip_graft += d.gossip_graft;
        self.gossip_prune += d.gossip_prune;
        self.gossip_duplicate += d.gossip_duplicate;
    }

    /// Folds every counter into a deterministic FNV-1a digest, used by the
    /// determinism tests alongside [`Trace::digest`].
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for v in [
            self.events_recorded,
            self.events_dropped,
            self.messages,
            self.local_events,
            self.frames_sent,
            self.frames_delivered,
            self.frames_dropped,
            self.bytes_sent,
            self.bytes_delivered,
            self.inquiries,
            self.inquiry_responses,
            self.connects_attempted,
            self.connects_ok,
            self.connects_failed,
            self.handovers,
            self.service_queries,
        ] {
            h.write_u64(v);
        }
        // The fault/recovery counters joined later; they are folded in only
        // when at least one is nonzero so that fault-free runs keep the
        // digests they had before the counters existed.
        let recovery = [
            self.connects_lost_setup,
            self.retries,
            self.timeouts,
            self.gave_up,
            self.resumed,
        ];
        if recovery.iter().any(|&v| v != 0) {
            for v in recovery {
                h.write_u64(v);
            }
        }
        // Same late-joiner rule for the gossip counters: gossip-free runs
        // keep their pre-gossip digests bit-for-bit.
        let gossip = [
            self.gossip_eager,
            self.gossip_lazy,
            self.gossip_graft,
            self.gossip_prune,
            self.gossip_duplicate,
        ];
        if gossip.iter().any(|&v| v != 0) {
            for v in gossip {
                h.write_u64(v);
            }
        }
        h.finish()
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} (dropped {}), messages={}, local={}, frames sent/delivered/dropped={}/{}/{}, \
             bytes sent/delivered={}/{}, inquiries={} (responses {}), \
             connects ok/failed={}/{} (refused {}, lost mid-setup {}), handovers={}, \
             service queries={}, retries={}, timeouts={}, gave up={}, resumed={}, \
             gossip eager/lazy/graft/prune/dup={}/{}/{}/{}/{}",
            self.events_recorded,
            self.events_dropped,
            self.messages,
            self.local_events,
            self.frames_sent,
            self.frames_delivered,
            self.frames_dropped,
            self.bytes_sent,
            self.bytes_delivered,
            self.inquiries,
            self.inquiry_responses,
            self.connects_ok,
            self.connects_failed,
            self.connects_failed.saturating_sub(self.connects_lost_setup),
            self.connects_lost_setup,
            self.handovers,
            self.service_queries,
            self.retries,
            self.timeouts,
            self.gave_up,
            self.resumed,
            self.gossip_eager,
            self.gossip_lazy,
            self.gossip_graft,
            self.gossip_prune,
            self.gossip_duplicate,
        )
    }
}

/// Incremental FNV-1a (64-bit) — the repo-local digest primitive.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Interning pool: each distinct actor/label string is stored once.
#[derive(Clone, Debug, Default)]
struct StrPool {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl StrPool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.into());
        self.index.insert(s.into(), id);
        id
    }

    fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Heap bytes held by the pool (string payloads; map overhead estimated
    /// as one extra copy of the payload plus a fixed per-entry cost).
    fn approx_mem_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        payload * 2 + self.strings.len() * 48
    }
}

/// The interned 20-byte event record the ring buffer actually stores.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct CompactEvent {
    at: SimTime,
    from: ActorId,
    to: ActorId,
    label: LabelId,
}

/// An append-only log of trace events for one simulation run.
///
/// Events are stored interned (see the module docs); every query method
/// resolves handles back to strings, so the public surface still speaks
/// `&str`/[`TraceEvent`].
///
/// # Example
///
/// ```rust
/// use ph_netsim::{Trace, SimTime};
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_secs(1), "client", "server", "PS_GETPROFILE");
/// trace.record(SimTime::from_secs(2), "server", "client", "PROFILE");
/// assert_eq!(trace.labels(), vec!["PS_GETPROFILE", "PROFILE"]);
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    pool: StrPool,
    events: VecDeque<CompactEvent>,
    capacity: usize,
    stats: TraceStats,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

// Two traces are equal when their retained, resolved event sequences are
// equal — pool layout and eviction history are representation details.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events.len() == other.events.len()
            && self.events.iter().zip(other.events.iter()).all(|(a, b)| {
                a.at == b.at
                    && self.pool.get(a.from.0) == other.pool.get(b.from.0)
                    && self.pool.get(a.to.0) == other.pool.get(b.to.0)
                    && self.pool.get(a.label.0) == other.pool.get(b.label.0)
            })
    }
}

impl Trace {
    /// Creates an empty, unbounded trace.
    pub fn new() -> Self {
        Trace {
            pool: StrPool::default(),
            events: VecDeque::new(),
            capacity: usize::MAX,
            stats: TraceStats::default(),
        }
    }

    /// Creates an empty trace that retains at most `capacity` events,
    /// evicting the oldest when full. The ring storage is pre-allocated so
    /// the steady-state record path performs no heap allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            pool: StrPool::default(),
            events: VecDeque::with_capacity(capacity),
            capacity,
            stats: TraceStats::default(),
        }
    }

    /// The maximum number of retained events (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the retention bound, evicting oldest events if over the new
    /// bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
            self.stats.events_dropped += 1;
        }
    }

    /// Interns an actor name, returning a stable handle for the zero-copy
    /// record path ([`Trace::record_ids`]).
    pub fn intern_actor(&mut self, name: &str) -> ActorId {
        ActorId(self.pool.intern(name))
    }

    /// Interns a message label, returning a stable handle.
    pub fn intern_label(&mut self, label: &str) -> LabelId {
        LabelId(self.pool.intern(label))
    }

    /// Looks up an actor handle *without* interning: the read-only fast path
    /// for concurrent workers that buffer records against a frozen pool and
    /// fall back to owned strings on a miss.
    pub fn lookup_actor(&self, name: &str) -> Option<ActorId> {
        self.pool.lookup(name).map(ActorId)
    }

    /// Looks up a label handle without interning (see [`Trace::lookup_actor`]).
    pub fn lookup_label(&self, label: &str) -> Option<LabelId> {
        self.pool.lookup(label).map(LabelId)
    }

    /// The string behind an actor handle.
    pub fn actor_name(&self, id: ActorId) -> &str {
        self.pool.get(id.0)
    }

    /// The string behind a label handle.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.pool.get(id.0)
    }

    /// Appends an event. Strings already present in the pool are not
    /// re-allocated; with pre-interned handles use [`Trace::record_ids`] to
    /// skip the pool lookups entirely.
    pub fn record(
        &mut self,
        at: SimTime,
        from: impl AsRef<str>,
        to: impl AsRef<str>,
        label: impl AsRef<str>,
    ) {
        let from = self.intern_actor(from.as_ref());
        let to = self.intern_actor(to.as_ref());
        let label = self.intern_label(label.as_ref());
        self.record_ids(at, from, to, label);
    }

    /// Appends an event from pre-interned handles: the allocation-free hot
    /// path (on a bounded trace the ring never grows).
    pub fn record_ids(&mut self, at: SimTime, from: ActorId, to: ActorId, label: LabelId) {
        self.stats.events_recorded += 1;
        if from == to {
            self.stats.local_events += 1;
        } else {
            self.stats.messages += 1;
        }
        if self.events.len() >= self.capacity {
            if self.capacity == 0 {
                self.stats.events_dropped += 1;
                return;
            }
            self.events.pop_front();
            self.stats.events_dropped += 1;
        }
        self.events.push_back(CompactEvent {
            at,
            from,
            to,
            label,
        });
    }

    /// The always-on counters.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Mutable access to the counters, for simulation drivers that account
    /// frames, inquiries, connects and handovers here.
    pub fn stats_mut(&mut self) -> &mut TraceStats {
        &mut self.stats
    }

    /// All retained events in order, resolved to owned strings.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().map(|e| self.resolve(e)).collect()
    }

    fn resolve(&self, e: &CompactEvent) -> TraceEvent {
        TraceEvent {
            at: e.at,
            from: self.pool.get(e.from.0).to_owned(),
            to: self.pool.get(e.to.0).to_owned(),
            label: self.pool.get(e.label.0).to_owned(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sequence of labels, in recording order.
    pub fn labels(&self) -> Vec<&str> {
        self.events
            .iter()
            .map(|e| self.pool.get(e.label.0))
            .collect()
    }

    /// Events exchanged between two specific actors (either direction).
    pub fn between(&self, a: &str, b: &str) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                let (from, to) = (self.pool.get(e.from.0), self.pool.get(e.to.0));
                (from == a && to == b) || (from == b && to == a)
            })
            .map(|e| self.resolve(e))
            .collect()
    }

    /// Labels of messages sent by `actor`.
    pub fn sent_by(&self, actor: &str) -> Vec<&str> {
        self.events
            .iter()
            .filter(|e| e.from != e.to && self.pool.get(e.from.0) == actor)
            .map(|e| self.pool.get(e.label.0))
            .collect()
    }

    /// Whether `needle` labels occur in order (not necessarily contiguously).
    pub fn contains_subsequence(&self, needle: &[&str]) -> bool {
        let mut it = needle.iter();
        let mut want = match it.next() {
            Some(w) => *w,
            None => return true,
        };
        for e in &self.events {
            if self.pool.get(e.label.0) == want {
                match it.next() {
                    Some(w) => want = *w,
                    None => return true,
                }
            }
        }
        false
    }

    /// Approximate heap footprint in bytes: ring storage plus string pool.
    /// Used by the scale harness to report peak trace memory.
    pub fn approx_mem_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<CompactEvent>() + self.pool.approx_mem_bytes()
    }

    /// A deterministic FNV-1a digest of the retained events and the
    /// counters. Two runs of the same seeded scenario must agree on this.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.events {
            h.write_u64(e.at.as_micros());
            h.write(self.pool.get(e.from.0).as_bytes());
            h.write(&[0xff]);
            h.write(self.pool.get(e.to.0).as_bytes());
            h.write(&[0xff]);
            h.write(self.pool.get(e.label.0).as_bytes());
            h.write(&[0xfe]);
        }
        h.write_u64(self.stats.digest());
        h.finish()
    }

    /// Renders the trace as an ASCII message sequence chart with one column
    /// per actor (in order of first appearance), mirroring the thesis's MSC
    /// figures.
    pub fn render_msc(&self) -> String {
        let mut actors: Vec<&str> = Vec::new();
        for e in &self.events {
            for actor in [self.pool.get(e.from.0), self.pool.get(e.to.0)] {
                if !actors.contains(&actor) {
                    actors.push(actor);
                }
            }
        }
        if actors.is_empty() {
            return String::from("(empty trace)\n");
        }
        let col_width = actors.iter().map(|a| a.len()).max().unwrap_or(0).max(12) + 4;
        let column = |actor: &str| actors.iter().position(|a| *a == actor).unwrap();
        let center = |i: usize| 10 + i * col_width + col_width / 2;

        let mut out = String::new();
        // Header row.
        out.push_str(&" ".repeat(10));
        for a in &actors {
            let pad = col_width - a.len();
            let left = pad / 2;
            out.push_str(&" ".repeat(left));
            out.push_str(a);
            out.push_str(&" ".repeat(pad - left));
        }
        out.push('\n');
        for e in &self.events {
            let (from, to, label) = (
                self.pool.get(e.from.0),
                self.pool.get(e.to.0),
                self.pool.get(e.label.0),
            );
            let (ci, cj) = (column(from), column(to));
            let time = format!("{:>8} ", e.at);
            let mut line: Vec<char> = format!("{}{}", time, " ".repeat(actors.len() * col_width))
                .chars()
                .collect();
            for (i, _) in actors.iter().enumerate() {
                line[center(i)] = '|';
            }
            if ci == cj {
                // Local action: annotate beside the actor's lifeline.
                let start = center(ci) + 2;
                for (k, ch) in format!("* {}", label).chars().enumerate() {
                    if start + k < line.len() {
                        line[start + k] = ch;
                    }
                }
            } else {
                let (lo, hi) = if ci < cj {
                    (center(ci), center(cj))
                } else {
                    (center(cj), center(ci))
                };
                for cell in line.iter_mut().take(hi).skip(lo + 1) {
                    *cell = '-';
                }
                if ci < cj {
                    line[hi - 1] = '>';
                } else {
                    line[lo + 1] = '<';
                }
                // Overlay the label mid-arrow.
                let label: Vec<char> = label.chars().collect();
                let mid = (lo + hi) / 2;
                let start = mid.saturating_sub(label.len() / 2).max(lo + 2);
                for (k, ch) in label.iter().enumerate() {
                    let pos = start + k;
                    if pos < hi - 1 {
                        line[pos] = *ch;
                    }
                }
            }
            out.push_str(line.iter().collect::<String>().trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "client", "server1", "PS_GETPROFILE");
        t.record(SimTime::from_secs(2), "server1", "client", "PROFILE_INFO");
        t.record(SimTime::from_secs(3), "client", "client", "DISPLAY");
        t
    }

    #[test]
    fn labels_in_order() {
        assert_eq!(
            sample().labels(),
            vec!["PS_GETPROFILE", "PROFILE_INFO", "DISPLAY"]
        );
    }

    #[test]
    fn between_filters_pairs() {
        let t = sample();
        assert_eq!(t.between("client", "server1").len(), 2);
        assert_eq!(t.between("client", "nobody").len(), 0);
    }

    #[test]
    fn sent_by_excludes_local_actions() {
        let t = sample();
        assert_eq!(t.sent_by("client"), vec!["PS_GETPROFILE"]);
    }

    #[test]
    fn subsequence_matching() {
        let t = sample();
        assert!(t.contains_subsequence(&["PS_GETPROFILE", "DISPLAY"]));
        assert!(t.contains_subsequence(&[]));
        assert!(!t.contains_subsequence(&["DISPLAY", "PS_GETPROFILE"]));
        assert!(!t.contains_subsequence(&["MISSING"]));
    }

    #[test]
    fn msc_renders_all_actors_and_labels() {
        let msc = sample().render_msc();
        assert!(msc.contains("client"));
        assert!(msc.contains("server1"));
        assert!(msc.contains("PS_GETPROFILE"));
        assert!(msc.contains("* DISPLAY"));
    }

    #[test]
    fn msc_empty_trace() {
        assert_eq!(Trace::new().render_msc(), "(empty trace)\n");
    }

    #[test]
    fn event_display_forms() {
        let t = sample();
        let arrow = t.events()[0].to_string();
        assert!(arrow.contains("client -> server1"));
        let local = t.events()[2].to_string();
        assert!(local.contains("client: DISPLAY"));
    }

    #[test]
    fn trace_wire_round_trip() {
        let t = sample();
        let back = Trace::decode_exact(&t.encode()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn trace_decode_rejects_truncation() {
        let t = sample();
        let frame = t.encode();
        assert!(Trace::decode_exact(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn interning_reuses_pool_entries() {
        let mut t = Trace::new();
        let a = t.intern_actor("alice");
        assert_eq!(t.intern_actor("alice"), a);
        assert_eq!(t.actor_name(a), "alice");
        let l = t.intern_label("PING");
        assert_eq!(t.intern_label("PING"), l);
        assert_eq!(t.label_name(l), "PING");
        // record() goes through the same pool.
        t.record(SimTime::ZERO, "alice", "alice", "PING");
        assert_eq!(t.events()[0].from, "alice");
    }

    #[test]
    fn bounded_ring_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime::from_secs(1), "a", "b", "ONE");
        t.record(SimTime::from_secs(2), "a", "b", "TWO");
        t.record(SimTime::from_secs(3), "a", "b", "THREE");
        assert_eq!(t.len(), 2);
        assert_eq!(t.labels(), vec!["TWO", "THREE"]);
        assert_eq!(t.stats().events_recorded, 3);
        assert_eq!(t.stats().events_dropped, 1);
    }

    #[test]
    fn set_capacity_trims_and_counts() {
        let mut t = sample();
        t.set_capacity(1);
        assert_eq!(t.labels(), vec!["DISPLAY"]);
        assert_eq!(t.stats().events_dropped, 2);
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    fn stats_classify_event_kinds() {
        let t = sample();
        assert_eq!(t.stats().events_recorded, 3);
        assert_eq!(t.stats().messages, 2);
        assert_eq!(t.stats().local_events, 1);
    }

    #[test]
    fn recovery_counters_fold_only_when_nonzero() {
        let mut base = TraceStats {
            frames_sent: 10,
            frames_delivered: 9,
            ..TraceStats::default()
        };
        let d0 = base.digest();
        base.retries = 1;
        assert_ne!(base.digest(), d0, "nonzero recovery counter must fold in");
        base.retries = 0;
        assert_eq!(base.digest(), d0, "all-zero recovery counters are absent");
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        assert_eq!(sample().digest(), sample().digest());
        let mut other = Trace::new();
        other.record(SimTime::from_secs(2), "server1", "client", "PROFILE_INFO");
        other.record(SimTime::from_secs(1), "client", "server1", "PS_GETPROFILE");
        other.record(SimTime::from_secs(3), "client", "client", "DISPLAY");
        assert_ne!(sample().digest(), other.digest());
    }

    #[test]
    fn record_ids_is_equivalent_to_record() {
        let mut a = Trace::new();
        let alice = a.intern_actor("alice");
        let bob = a.intern_actor("bob");
        let ping = a.intern_label("PING");
        a.record_ids(SimTime::from_secs(1), alice, bob, ping);
        let mut b = Trace::new();
        b.record(SimTime::from_secs(1), "alice", "bob", "PING");
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn lookup_is_read_only() {
        let mut t = Trace::new();
        let a = t.intern_actor("alice");
        let l = t.intern_label("PING");
        assert_eq!(t.lookup_actor("alice"), Some(a));
        assert_eq!(t.lookup_label("PING"), Some(l));
        assert_eq!(t.lookup_actor("bob"), None);
        assert_eq!(t.lookup_label("PONG"), None);
        // A miss must not have interned anything.
        assert_eq!(t.lookup_actor("bob"), None);
    }

    #[test]
    fn stats_add_is_field_wise_and_commutative() {
        let mut a = TraceStats {
            frames_sent: 3,
            inquiries: 1,
            retries: 2,
            ..TraceStats::default()
        };
        let b = TraceStats {
            frames_sent: 4,
            handovers: 5,
            resumed: 1,
            ..TraceStats::default()
        };
        let mut ba = b;
        ba.add(&a);
        a.add(&b);
        assert_eq!(a, ba);
        assert_eq!(a.frames_sent, 7);
        assert_eq!(a.handovers, 5);
        assert_eq!(a.retries, 2);
        assert_eq!(a.resumed, 1);
    }

    #[test]
    fn approx_mem_accounts_pool_and_ring() {
        let mut t = Trace::with_capacity(64);
        let before = t.approx_mem_bytes();
        t.record(SimTime::ZERO, "some-actor", "other-actor", "A_LABEL");
        assert!(t.approx_mem_bytes() > before);
    }
}
