//! Node mobility models.
//!
//! A mobility model answers "where is this node at virtual time *t*?". Models
//! that involve randomness (random waypoint, random walk) extend their
//! trajectory lazily from a private [`SimRng`], so positions are a pure
//! function of `(seed, t)` and any query order yields the same answers.
//!
//! Provided models:
//!
//! * [`Stationary`] — a fixed position (the thesis's lab desktop PCs);
//! * [`ScriptedPath`] — piecewise-linear waypoints with explicit times
//!   (a pedestrian walking through a corridor, a bus route);
//! * [`RandomWaypoint`] — the classic ad-hoc-networking model: pick a random
//!   destination in an area, move at a random speed, pause, repeat;
//! * [`RandomWalk`] — fixed-length random steps, reflecting at area borders;
//! * [`Offset`] — a fixed displacement from another model (passengers seated
//!   in a moving bus).

use std::fmt::Debug;
use std::time::Duration;

use crate::geometry::{Point2, Rect, Vec2};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Position as a function of virtual time.
///
/// Implementations take `&mut self` so that stochastic models can lazily
/// extend an internal trajectory; re-querying any earlier time must return
/// the same answer (trajectories are append-only).
///
/// This purity contract is what lets the parallel epoch engine
/// ([`World::prepare_epoch`](crate::World::prepare_epoch)) sample node
/// positions from worker threads: each node's model is visited by exactly
/// one worker per epoch (`Send` suffices, no sharing), and because the
/// answer depends only on `(seed, t)` — never on which other times were
/// sampled before — a parallel run computes bit-identical positions to a
/// serial one. `query_order_never_changes_positions` in this module pins
/// the contract down for every stochastic model.
pub trait Mobility: Debug + Send {
    /// The node's position at time `t`.
    fn position(&mut self, t: SimTime) -> Point2;

    /// An upper bound on the node's speed in metres per second, used by the
    /// region index to bound how far a node can stray from its bucketed
    /// position between membership rebuilds. Must satisfy
    /// `position(a).distance(position(b)) <= max_speed_mps() * |b - a|` for
    /// all `a`, `b`.
    ///
    /// The default is `f64::INFINITY`: a model without a bound is correct
    /// but forfeits region locality — the index re-checks such nodes on
    /// every query instead of only the ones bucketed nearby. All built-in
    /// models report a finite bound.
    fn max_speed_mps(&self) -> f64 {
        f64::INFINITY
    }
}

/// A node that never moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    at: Point2,
}

impl Stationary {
    /// Creates a stationary node at `at`.
    pub fn new(at: Point2) -> Self {
        Stationary { at }
    }
}

impl Mobility for Stationary {
    fn position(&mut self, _t: SimTime) -> Point2 {
        self.at
    }

    fn max_speed_mps(&self) -> f64 {
        0.0
    }
}

/// Piecewise-linear movement through explicit `(time, point)` waypoints.
///
/// Before the first waypoint the node sits at the first point; after the last
/// waypoint it sits at the last point.
///
/// # Example
///
/// ```rust
/// use ph_netsim::mobility::{Mobility, ScriptedPath};
/// use ph_netsim::geometry::Point2;
/// use ph_netsim::SimTime;
///
/// let mut path = ScriptedPath::new(vec![
///     (SimTime::from_secs(0), Point2::new(0.0, 0.0)),
///     (SimTime::from_secs(10), Point2::new(100.0, 0.0)),
/// ]);
/// assert_eq!(path.position(SimTime::from_secs(5)), Point2::new(50.0, 0.0));
/// assert_eq!(path.position(SimTime::from_secs(99)), Point2::new(100.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptedPath {
    waypoints: Vec<(SimTime, Point2)>,
}

impl ScriptedPath {
    /// Creates a path from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty or its times are not strictly
    /// increasing.
    pub fn new(waypoints: Vec<(SimTime, Point2)>) -> Self {
        assert!(!waypoints.is_empty(), "ScriptedPath needs >= 1 waypoint");
        for pair in waypoints.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "ScriptedPath waypoint times must be strictly increasing"
            );
        }
        ScriptedPath { waypoints }
    }

    /// Convenience: a walk from `from` to `to` starting at `start`, at
    /// `speed_mps` metres per second, then standing still.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not positive.
    pub fn walk(start: SimTime, from: Point2, to: Point2, speed_mps: f64) -> Self {
        assert!(speed_mps > 0.0, "walking speed must be positive");
        let dist = from.distance(to);
        let travel = Duration::from_secs_f64(dist / speed_mps);
        if travel.is_zero() {
            ScriptedPath::new(vec![(start, from)])
        } else {
            ScriptedPath::new(vec![(start, from), (start + travel, to)])
        }
    }
}

impl Mobility for ScriptedPath {
    fn position(&mut self, t: SimTime) -> Point2 {
        let wps = &self.waypoints;
        if t <= wps[0].0 {
            return wps[0].1;
        }
        if t >= wps[wps.len() - 1].0 {
            return wps[wps.len() - 1].1;
        }
        // Find the segment containing t.
        let idx = wps.partition_point(|(wt, _)| *wt <= t);
        let (t0, p0) = wps[idx - 1];
        let (t1, p1) = wps[idx];
        let frac = (t - t0).as_secs_f64() / (t1 - t0).as_secs_f64();
        p0.lerp(p1, frac)
    }

    fn max_speed_mps(&self) -> f64 {
        // The fastest leg bounds the whole path (the node stands still
        // before the first and after the last waypoint).
        self.waypoints
            .windows(2)
            .map(|pair| {
                let (t0, p0) = pair[0];
                let (t1, p1) = pair[1];
                p0.distance(p1) / (t1 - t0).as_secs_f64()
            })
            .fold(0.0, f64::max)
    }
}

/// One leg of a lazily generated stochastic trajectory.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: SimTime,
    end: SimTime,
    from: Point2,
    to: Point2,
}

impl Segment {
    fn position(&self, t: SimTime) -> Point2 {
        if self.end <= self.start {
            return self.to;
        }
        let frac =
            t.saturating_since(self.start).as_secs_f64() / (self.end - self.start).as_secs_f64();
        self.from.lerp(self.to, frac.clamp(0.0, 1.0))
    }
}

fn position_from_segments(
    segments: &mut Vec<Segment>,
    t: SimTime,
    mut extend: impl FnMut(&Segment) -> Segment,
) -> Point2 {
    while segments.last().is_none_or(|s| s.end < t) {
        let next = match segments.last() {
            Some(last) => extend(last),
            None => unreachable!("stochastic models seed an initial segment"),
        };
        segments.push(next);
    }
    let idx = segments.partition_point(|s| s.end < t);
    segments[idx].position(t)
}

/// The random waypoint model.
///
/// The node repeatedly picks a uniform destination inside `area`, travels
/// there at a uniform speed from `speed_mps`, pauses for a uniform time from
/// `pause`, and repeats. This is the standard mobility model of the ad-hoc
/// networking literature the thesis cites for dynamic group discovery.
#[derive(Debug)]
pub struct RandomWaypoint {
    area: Rect,
    speed_mps: (f64, f64),
    pause: (Duration, Duration),
    rng: SimRng,
    segments: Vec<Segment>,
    pausing: bool,
}

impl RandomWaypoint {
    /// Creates a random-waypoint mover starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is not positive or `start` lies outside
    /// `area`.
    pub fn new(
        area: Rect,
        start: Point2,
        speed_mps: (f64, f64),
        pause: (Duration, Duration),
        rng: SimRng,
    ) -> Self {
        assert!(
            speed_mps.0 > 0.0 && speed_mps.1 >= speed_mps.0,
            "speed range must be positive and ordered"
        );
        assert!(pause.0 <= pause.1, "pause range must be ordered");
        assert!(area.contains(start), "start must lie inside the area");
        RandomWaypoint {
            area,
            speed_mps,
            pause,
            rng,
            segments: vec![Segment {
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                from: start,
                to: start,
            }],
            pausing: false,
        }
    }
}

impl Mobility for RandomWaypoint {
    fn position(&mut self, t: SimTime) -> Point2 {
        let area = self.area;
        let (lo, hi) = self.speed_mps;
        let pause = self.pause;
        let rng = &mut self.rng;
        let pausing = &mut self.pausing;
        position_from_segments(&mut self.segments, t, |last| {
            if *pausing {
                // Travel leg to a fresh destination.
                *pausing = false;
                let dest = Point2::new(
                    rng.range_f64(area.min.x..area.max.x.max(area.min.x + f64::EPSILON)),
                    rng.range_f64(area.min.y..area.max.y.max(area.min.y + f64::EPSILON)),
                );
                let speed = if hi > lo { rng.range_f64(lo..hi) } else { lo };
                let travel = Duration::from_secs_f64(last.to.distance(dest) / speed)
                    .max(Duration::from_micros(1));
                Segment {
                    start: last.end,
                    end: last.end + travel,
                    from: last.to,
                    to: dest,
                }
            } else {
                // Pause leg.
                *pausing = true;
                let d = rng
                    .duration_between(pause.0, pause.1)
                    .max(Duration::from_micros(1));
                Segment {
                    start: last.end,
                    end: last.end + d,
                    from: last.to,
                    to: last.to,
                }
            }
        })
    }

    fn max_speed_mps(&self) -> f64 {
        self.speed_mps.1
    }
}

/// A random walk with fixed-duration steps, reflecting off area borders.
#[derive(Debug)]
pub struct RandomWalk {
    area: Rect,
    speed_mps: f64,
    step: Duration,
    rng: SimRng,
    segments: Vec<Segment>,
}

impl RandomWalk {
    /// Creates a random walker starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not positive, `step` is zero, or `start`
    /// lies outside `area`.
    pub fn new(area: Rect, start: Point2, speed_mps: f64, step: Duration, rng: SimRng) -> Self {
        assert!(speed_mps > 0.0, "speed must be positive");
        assert!(!step.is_zero(), "step duration must be non-zero");
        assert!(area.contains(start), "start must lie inside the area");
        RandomWalk {
            area,
            speed_mps,
            step,
            rng,
            segments: vec![Segment {
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                from: start,
                to: start,
            }],
        }
    }
}

impl Mobility for RandomWalk {
    fn position(&mut self, t: SimTime) -> Point2 {
        let area = self.area;
        let speed = self.speed_mps;
        let step = self.step;
        let rng = &mut self.rng;
        position_from_segments(&mut self.segments, t, |last| {
            let angle = rng.range_f64(0.0..std::f64::consts::TAU);
            let dist = speed * step.as_secs_f64();
            let raw = last.to + Vec2::new(angle.cos(), angle.sin()) * dist;
            let dest = area.clamp(raw);
            Segment {
                start: last.end,
                end: last.end + step,
                from: last.to,
                to: dest,
            }
        })
    }

    fn max_speed_mps(&self) -> f64 {
        // Border clamping only shortens a step, never lengthens it.
        self.speed_mps
    }
}

/// Movement constrained to a city-block grid (the Manhattan mobility model
/// of the ad-hoc networking literature).
///
/// The node travels along grid lines spaced `block_m` apart inside `area`;
/// at each intersection it continues straight with probability 1/2 or turns
/// left/right with probability 1/4 each (reversing only at the area edge).
/// Useful for urban scenarios where Bluetooth contacts happen at street
/// corners.
#[derive(Debug)]
pub struct ManhattanGrid {
    area: Rect,
    block_m: f64,
    speed_mps: f64,
    rng: SimRng,
    segments: Vec<Segment>,
    /// Current heading as a unit grid direction.
    heading: Vec2,
}

impl ManhattanGrid {
    /// Creates a grid mover starting at the intersection nearest `start`.
    ///
    /// # Panics
    ///
    /// Panics if `block_m` or `speed_mps` is not positive, or if `area` is
    /// smaller than one block in either dimension.
    pub fn new(area: Rect, start: Point2, block_m: f64, speed_mps: f64, mut rng: SimRng) -> Self {
        assert!(block_m > 0.0, "block size must be positive");
        assert!(speed_mps > 0.0, "speed must be positive");
        assert!(
            area.width() >= block_m && area.height() >= block_m,
            "area must hold at least one block"
        );
        let snap = |v: f64, lo: f64, hi: f64| -> f64 {
            ((v - lo) / block_m)
                .round()
                .mul_add(block_m, lo)
                .clamp(lo, hi)
        };
        let origin = Point2::new(
            snap(start.x, area.min.x, area.max.x),
            snap(start.y, area.min.y, area.max.y),
        );
        let heading = *rng
            .pick(&[
                Vec2::new(1.0, 0.0),
                Vec2::new(-1.0, 0.0),
                Vec2::new(0.0, 1.0),
                Vec2::new(0.0, -1.0),
            ])
            .expect("non-empty");
        ManhattanGrid {
            area,
            block_m,
            speed_mps,
            rng,
            segments: vec![Segment {
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                from: origin,
                to: origin,
            }],
            heading,
        }
    }
}

impl Mobility for ManhattanGrid {
    fn position(&mut self, t: SimTime) -> Point2 {
        let block = self.block_m;
        let speed = self.speed_mps;
        let travel = Duration::from_secs_f64(block / speed).max(Duration::from_micros(1));
        // Split borrows for the extend closure.
        let area = self.area;
        let rng = &mut self.rng;
        let heading = &mut self.heading;
        position_from_segments(&mut self.segments, t, |last| {
            let at = last.to;
            // Keep going straight with p=1/2 when possible; otherwise pick
            // uniformly among the legal turns.
            let options: Vec<Vec2> = {
                let dirs = [
                    Vec2::new(1.0, 0.0),
                    Vec2::new(-1.0, 0.0),
                    Vec2::new(0.0, 1.0),
                    Vec2::new(0.0, -1.0),
                ];
                dirs.into_iter()
                    .filter(|d| area.contains(at + *d * block))
                    .collect()
            };
            let straight_ok = options.contains(heading);
            let dir = if straight_ok && rng.chance(0.5) {
                *heading
            } else {
                *rng.pick(&options)
                    .expect("a grid point always has a legal move")
            };
            *heading = dir;
            Segment {
                start: last.end,
                end: last.end + travel,
                from: at,
                to: at + dir * block,
            }
        })
    }

    fn max_speed_mps(&self) -> f64 {
        self.speed_mps
    }
}

/// A fixed displacement from a base trajectory.
///
/// Used for group mobility: the bus follows a [`ScriptedPath`] and each
/// passenger is an `Offset` of it, so all passengers stay within Bluetooth
/// range of each other for the whole ride.
#[derive(Debug, Clone)]
pub struct Offset<M> {
    base: M,
    offset: Vec2,
}

impl<M: Mobility> Offset<M> {
    /// Creates a trajectory displaced from `base` by `offset`.
    pub fn new(base: M, offset: Vec2) -> Self {
        Offset { base, offset }
    }
}

impl<M: Mobility> Mobility for Offset<M> {
    fn position(&mut self, t: SimTime) -> Point2 {
        self.base.position(t) + self.offset
    }

    fn max_speed_mps(&self) -> f64 {
        // A rigid displacement preserves distances between any two samples.
        self.base.max_speed_mps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let p = Point2::new(3.0, 4.0);
        let mut m = Stationary::new(p);
        assert_eq!(m.position(SimTime::ZERO), p);
        assert_eq!(m.position(SimTime::from_secs(1000)), p);
    }

    #[test]
    fn scripted_path_interpolates() {
        let mut m = ScriptedPath::new(vec![
            (SimTime::from_secs(10), Point2::new(0.0, 0.0)),
            (SimTime::from_secs(20), Point2::new(10.0, 0.0)),
            (SimTime::from_secs(30), Point2::new(10.0, 10.0)),
        ]);
        assert_eq!(m.position(SimTime::ZERO), Point2::new(0.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(15)), Point2::new(5.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(25)), Point2::new(10.0, 5.0));
        assert_eq!(m.position(SimTime::from_secs(99)), Point2::new(10.0, 10.0));
    }

    #[test]
    fn scripted_walk_speed() {
        let mut m = ScriptedPath::walk(SimTime::ZERO, Point2::ORIGIN, Point2::new(10.0, 0.0), 1.0);
        assert_eq!(m.position(SimTime::from_secs(5)), Point2::new(5.0, 0.0));
        assert_eq!(m.position(SimTime::from_secs(10)), Point2::new(10.0, 0.0));
    }

    #[test]
    fn scripted_walk_zero_distance() {
        let mut m = ScriptedPath::walk(SimTime::ZERO, Point2::ORIGIN, Point2::ORIGIN, 1.0);
        assert_eq!(m.position(SimTime::from_secs(3)), Point2::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn scripted_path_rejects_unsorted() {
        let _ = ScriptedPath::new(vec![
            (SimTime::from_secs(5), Point2::ORIGIN),
            (SimTime::from_secs(5), Point2::new(1.0, 1.0)),
        ]);
    }

    #[test]
    fn random_waypoint_stays_in_area_and_is_deterministic() {
        let area = Rect::sized(100.0, 100.0);
        let start = Point2::new(50.0, 50.0);
        let mk = || {
            RandomWaypoint::new(
                area,
                start,
                (0.5, 2.0),
                (Duration::ZERO, Duration::from_secs(5)),
                SimRng::from_seed(11),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for s in 0..600 {
            let t = SimTime::from_secs(s);
            let pa = a.position(t);
            assert!(area.contains(pa), "escaped area at {t}: {pa}");
            assert_eq!(pa, b.position(t), "nondeterministic at {t}");
        }
    }

    #[test]
    fn random_waypoint_revisits_past_consistently() {
        let area = Rect::sized(50.0, 50.0);
        let mut m = RandomWaypoint::new(
            area,
            Point2::new(10.0, 10.0),
            (1.0, 1.0),
            (Duration::from_secs(1), Duration::from_secs(1)),
            SimRng::from_seed(3),
        );
        let late = m.position(SimTime::from_secs(300));
        let early = m.position(SimTime::from_secs(10));
        // Re-query both: trajectory is append-only, answers stable.
        assert_eq!(m.position(SimTime::from_secs(10)), early);
        assert_eq!(m.position(SimTime::from_secs(300)), late);
    }

    #[test]
    fn random_walk_stays_in_area() {
        let area = Rect::sized(20.0, 20.0);
        let mut m = RandomWalk::new(
            area,
            Point2::new(10.0, 10.0),
            1.4,
            Duration::from_secs(2),
            SimRng::from_seed(4),
        );
        for s in 0..500 {
            let p = m.position(SimTime::from_secs(s));
            assert!(area.contains(p));
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let area = Rect::sized(1000.0, 1000.0);
        let start = Point2::new(500.0, 500.0);
        let mut m = RandomWalk::new(
            area,
            start,
            1.0,
            Duration::from_secs(1),
            SimRng::from_seed(5),
        );
        let moved = (0..100)
            .map(|s| m.position(SimTime::from_secs(s)))
            .any(|p| p.distance(start) > 1.0);
        assert!(moved);
    }

    #[test]
    fn manhattan_grid_stays_on_grid_and_in_area() {
        let area = Rect::sized(100.0, 100.0);
        let mut m = ManhattanGrid::new(
            area,
            Point2::new(48.0, 52.0),
            10.0,
            2.0,
            SimRng::from_seed(9),
        );
        for s in 0..1000 {
            let p = m.position(SimTime::from_secs(s));
            assert!(area.contains(p), "escaped at {s}s: {p}");
            // At least one coordinate is always on a grid line.
            let on_x = (p.x / 10.0 - (p.x / 10.0).round()).abs() < 1e-9;
            let on_y = (p.y / 10.0 - (p.y / 10.0).round()).abs() < 1e-9;
            assert!(on_x || on_y, "off-grid at {s}s: {p}");
        }
    }

    #[test]
    fn manhattan_grid_is_deterministic_and_moves() {
        let area = Rect::sized(60.0, 60.0);
        let mk = || {
            ManhattanGrid::new(
                area,
                Point2::new(30.0, 30.0),
                15.0,
                1.5,
                SimRng::from_seed(4),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut moved = false;
        for s in 0..400 {
            let t = SimTime::from_secs(s);
            let pa = a.position(t);
            assert_eq!(pa, b.position(t));
            if pa.distance(Point2::new(30.0, 30.0)) > 14.0 {
                moved = true;
            }
        }
        assert!(moved, "walker never left its starting block");
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn manhattan_grid_rejects_tiny_areas() {
        let _ = ManhattanGrid::new(
            Rect::sized(5.0, 5.0),
            Point2::new(1.0, 1.0),
            10.0,
            1.0,
            SimRng::from_seed(1),
        );
    }

    #[test]
    fn offset_tracks_base() {
        let base = ScriptedPath::walk(SimTime::ZERO, Point2::ORIGIN, Point2::new(100.0, 0.0), 10.0);
        let mut passenger = Offset::new(base, Vec2::new(0.0, 2.0));
        assert_eq!(
            passenger.position(SimTime::from_secs(5)),
            Point2::new(50.0, 2.0)
        );
    }

    #[test]
    fn query_order_never_changes_positions() {
        // The epoch engine's determinism rests on this: sampling extra
        // times, or the same times in a different order, must not perturb
        // any answer. Exercise every stochastic model with an adversarial
        // query order (late-first, interleaved, repeated) against a
        // fresh twin queried in ascending order.
        let area = Rect::sized(200.0, 200.0);
        type ModelFactory = Box<dyn Fn() -> Box<dyn Mobility>>;
        let models: Vec<(&str, ModelFactory)> = vec![
            (
                "waypoint",
                Box::new(move || {
                    Box::new(RandomWaypoint::new(
                        area,
                        Point2::new(100.0, 100.0),
                        (0.5, 2.0),
                        (Duration::ZERO, Duration::from_secs(3)),
                        SimRng::from_seed(21),
                    ))
                }),
            ),
            (
                "walk",
                Box::new(move || {
                    Box::new(RandomWalk::new(
                        area,
                        Point2::new(100.0, 100.0),
                        1.2,
                        Duration::from_secs(2),
                        SimRng::from_seed(22),
                    ))
                }),
            ),
            (
                "manhattan",
                Box::new(move || {
                    Box::new(ManhattanGrid::new(
                        area,
                        Point2::new(100.0, 100.0),
                        20.0,
                        1.5,
                        SimRng::from_seed(23),
                    ))
                }),
            ),
        ];
        for (name, mk) in models {
            let mut ordered = mk();
            let baseline: Vec<Point2> = (0..240)
                .map(|s| ordered.position(SimTime::from_secs(s)))
                .collect();
            let mut adversarial = mk();
            // Far future first, then a descending sweep, then re-queries.
            adversarial.position(SimTime::from_secs(239));
            for s in (0..240).rev() {
                assert_eq!(
                    adversarial.position(SimTime::from_secs(s)),
                    baseline[s as usize],
                    "{name}: descending query diverged at {s}s"
                );
            }
            for s in [0u64, 100, 239, 50, 50, 239] {
                assert_eq!(
                    adversarial.position(SimTime::from_secs(s)),
                    baseline[s as usize],
                    "{name}: re-query diverged at {s}s"
                );
            }
        }
    }

    #[test]
    fn max_speed_bounds_observed_displacement() {
        // The region index trusts `max_speed_mps` to bound how far a node
        // can drift between bucket snapshots; a model that under-reports
        // would silently corrupt neighbor queries. Sample each stochastic
        // model at 1 s granularity and check the advertised bound.
        let area = Rect::sized(200.0, 200.0);
        let mut models: Vec<(&str, Box<dyn Mobility>)> = vec![
            (
                "waypoint",
                Box::new(RandomWaypoint::new(
                    area,
                    Point2::new(100.0, 100.0),
                    (0.5, 2.0),
                    (Duration::ZERO, Duration::from_secs(3)),
                    SimRng::from_seed(31),
                )),
            ),
            (
                "walk",
                Box::new(RandomWalk::new(
                    area,
                    Point2::new(100.0, 100.0),
                    1.2,
                    Duration::from_secs(2),
                    SimRng::from_seed(32),
                )),
            ),
            (
                "manhattan",
                Box::new(ManhattanGrid::new(
                    area,
                    Point2::new(100.0, 100.0),
                    20.0,
                    1.5,
                    SimRng::from_seed(33),
                )),
            ),
            (
                "offset",
                Box::new(Offset::new(
                    ScriptedPath::walk(SimTime::ZERO, Point2::ORIGIN, Point2::new(90.0, 0.0), 3.0),
                    Vec2::new(0.0, 2.0),
                )),
            ),
            ("stationary", Box::new(Stationary::new(Point2::ORIGIN))),
        ];
        for (name, m) in &mut models {
            let bound = m.max_speed_mps();
            assert!(bound.is_finite(), "{name}: built-in bound must be finite");
            let mut prev = m.position(SimTime::ZERO);
            for s in 1..400u64 {
                let p = m.position(SimTime::from_secs(s));
                // Interpolation rounding can overshoot by a few ULPs; the
                // region index inflates the bound the same way.
                assert!(
                    prev.distance(p) <= bound * (1.0 + 1e-6) + 1e-9,
                    "{name}: moved {} m in 1 s, bound {bound}",
                    prev.distance(p)
                );
                prev = p;
            }
        }
    }

    #[test]
    #[should_panic(expected = "inside the area")]
    fn waypoint_start_outside_area_panics() {
        let _ = RandomWaypoint::new(
            Rect::sized(10.0, 10.0),
            Point2::new(50.0, 50.0),
            (1.0, 2.0),
            (Duration::ZERO, Duration::ZERO),
            SimRng::from_seed(1),
        );
    }
}
