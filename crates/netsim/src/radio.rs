//! Wireless technology models: Bluetooth, WLAN (ad-hoc), and GPRS.
//!
//! The thesis's PeerHood middleware abstracts over exactly these three
//! technologies (its BTPlugin, WLANPlugin and GPRSPlugin). Each technology is
//! described here by a [`TechnologyProfile`] holding the parameters that
//! dominate the timing behaviour the evaluation measures:
//!
//! * how long a discovery round takes and how quickly devices answer it
//!   (Bluetooth inquiry is the famous 10.24 s window of the 1.x
//!   specification — the single largest contributor to the 11 s "group
//!   search" figure of Table 8);
//! * how long connection establishment takes;
//! * effective application-level throughput and per-message latency.
//!
//! Values are calibrated to 2008-era hardware as documented in
//! `DESIGN.md` §6; they are deliberately exposed as data so experiments can
//! run ablations with modified profiles.

use codec::{DecodeError, Wire};
use std::fmt;
use std::time::Duration;

use crate::fault::{self, FaultPlan};
use crate::rng::SimRng;

/// One of the wireless technologies PeerHood can communicate over.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Technology {
    /// Short-range PAN radio (L2CAP transport in PeerHood's BTPlugin).
    Bluetooth,
    /// IEEE 802.11 ad-hoc mode (IP broadcast discovery in the WLANPlugin).
    Wlan,
    /// Cellular packet data via an operator proxy (the GPRSPlugin).
    Gprs,
}

impl Technology {
    /// All technologies, in the priority order PeerHood prefers them
    /// (cheapest/fastest first — matches the thesis's cost argument for
    /// preferring Bluetooth and WLAN over GPRS).
    pub const ALL: [Technology; 3] = [Technology::Bluetooth, Technology::Wlan, Technology::Gprs];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Bluetooth => "Bluetooth",
            Technology::Wlan => "WLAN",
            Technology::Gprs => "GPRS",
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An inline set of [`Technology`] values — one bit per radio.
///
/// Device descriptions carry their radio equipment everywhere (discovery
/// events, neighbor tables, daemon configs). A `Vec<Technology>` there costs
/// a heap allocation per copy, which at crowd scale is millions of 32-byte
/// allocations holding three one-byte values; this one-byte bitmask is the
/// same set with no allocation. Iteration is always in [`Technology::ALL`]
/// (= `Ord`) order, so it is drop-in deterministic wherever a sorted,
/// deduplicated `Vec<Technology>` was used before.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct TechSet(u8);

impl TechSet {
    /// The empty set.
    pub const EMPTY: TechSet = TechSet(0);

    fn bit(tech: Technology) -> u8 {
        match tech {
            Technology::Bluetooth => 1,
            Technology::Wlan => 2,
            Technology::Gprs => 4,
        }
    }

    /// Adds `tech` to the set.
    pub fn insert(&mut self, tech: Technology) {
        self.0 |= Self::bit(tech);
    }

    /// Removes `tech` from the set.
    pub fn remove(&mut self, tech: Technology) {
        self.0 &= !Self::bit(tech);
    }

    /// Whether `tech` is in the set.
    pub fn contains(self, tech: Technology) -> bool {
        self.0 & Self::bit(tech) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of technologies in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Members in [`Technology::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Technology> {
        Technology::ALL
            .into_iter()
            .filter(move |&tech| self.contains(tech))
    }
}

impl FromIterator<Technology> for TechSet {
    fn from_iter<I: IntoIterator<Item = Technology>>(iter: I) -> Self {
        let mut set = TechSet::EMPTY;
        for tech in iter {
            set.insert(tech);
        }
        set
    }
}

impl IntoIterator for TechSet {
    type Item = Technology;
    type IntoIter =
        std::iter::Filter<std::array::IntoIter<Technology, 3>, Box<dyn FnMut(&Technology) -> bool>>;

    fn into_iter(self) -> Self::IntoIter {
        Technology::ALL
            .into_iter()
            .filter(Box::new(move |&tech| self.contains(tech)))
    }
}

impl fmt::Debug for TechSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Timing and capacity parameters of one wireless technology.
///
/// A profile is plain data: experiments may clone and tweak it (e.g. the
/// technology-ablation benchmark sweeps `inquiry_duration`).
#[derive(Clone, Debug, PartialEq)]
pub struct TechnologyProfile {
    /// Radio range in metres. `f64::INFINITY` means coverage-independent
    /// (cellular).
    pub range_m: f64,
    /// Length of one full discovery round (Bluetooth inquiry window, WLAN
    /// scan, GPRS proxy lookup).
    pub inquiry_duration: Duration,
    /// Devices answer a discovery round uniformly within this window from
    /// its start.
    pub response_window: Duration,
    /// Granularity of the listen grid inside the response window: a response
    /// sampled anywhere in a slot is reported at the *end* of that slot,
    /// because the seeker only observes answers when its scan window opens
    /// (Bluetooth inquiry scan recurs every 1.28 s with an 11.25 ms window;
    /// WLAN ad-hoc nodes align to the 102.4 ms beacon interval; GPRS proxy
    /// lookups poll on a coarse timer). `Duration::ZERO` disables
    /// quantization. Slot alignment also lets the epoch engine batch
    /// co-slotted responses into one parallel timestamp batch.
    pub response_slot: Duration,
    /// Probability that an in-range device is missed by one discovery round
    /// (Bluetooth inquiry is probabilistic; IP broadcast effectively is not).
    pub discovery_miss_prob: f64,
    /// Mean time to establish a connection to a discovered device (paging +
    /// transport setup).
    pub connect_setup: Duration,
    /// Symmetric uniform jitter applied to `connect_setup`.
    pub connect_jitter: Duration,
    /// Effective application-level throughput in bits per second.
    pub throughput_bps: f64,
    /// Mean one-way latency of a message independent of its size.
    pub latency: Duration,
    /// Symmetric uniform jitter applied to `latency`.
    pub latency_jitter: Duration,
}

/// Bluetooth 1.2-class radio, as used in the thesis experiments
/// (3COM USB dongles / ThinkPad T40 built-in).
pub static BLUETOOTH: TechnologyProfile = TechnologyProfile {
    range_m: 10.0,
    // The standard inquiry length of the era: 4 × 2.56 s trains.
    inquiry_duration: Duration::from_millis(10_240),
    response_window: Duration::from_millis(10_240),
    // Inquiry-scan window of the 1.x spec: 11.25 ms every 1.28 s.
    response_slot: Duration::from_micros(11_250),
    discovery_miss_prob: 0.05,
    connect_setup: Duration::from_millis(950),
    connect_jitter: Duration::from_millis(350),
    // ~60 % of the 1 Mbit/s air rate survives L2CAP overheads.
    throughput_bps: 600_000.0,
    latency: Duration::from_millis(35),
    latency_jitter: Duration::from_millis(15),
};

/// IEEE 802.11b/g ad-hoc mode.
pub static WLAN: TechnologyProfile = TechnologyProfile {
    range_m: 80.0,
    inquiry_duration: Duration::from_millis(2_200),
    response_window: Duration::from_millis(2_000),
    // 100 TU beacon interval of 802.11 ad-hoc mode.
    response_slot: Duration::from_micros(102_400),
    discovery_miss_prob: 0.01,
    connect_setup: Duration::from_millis(180),
    connect_jitter: Duration::from_millis(60),
    throughput_bps: 8_000_000.0,
    latency: Duration::from_millis(6),
    latency_jitter: Duration::from_millis(3),
};

/// GPRS class-10 cellular data through the operator's proxy.
pub static GPRS: TechnologyProfile = TechnologyProfile {
    range_m: f64::INFINITY,
    inquiry_duration: Duration::from_millis(2_500),
    response_window: Duration::from_millis(2_000),
    // Operator-proxy lookups answer on a 250 ms poll tick.
    response_slot: Duration::from_millis(250),
    discovery_miss_prob: 0.0,
    connect_setup: Duration::from_millis(1_400),
    connect_jitter: Duration::from_millis(500),
    throughput_bps: 40_000.0,
    latency: Duration::from_millis(600),
    latency_jitter: Duration::from_millis(200),
};

/// The complete radio environment of one scenario: a (possibly tweaked)
/// [`TechnologyProfile`] per technology plus a [`FaultPlan`].
///
/// This replaces direct use of the global `BLUETOOTH`/`WLAN`/`GPRS` statics
/// in scenario construction: build an env fluently and hand it to
/// `World`/`Cluster`. The default env holds exactly those statics and an
/// inert fault plan, so `RadioEnv::default()` reproduces the historical
/// behaviour bit-for-bit.
///
/// ```rust
/// use ph_netsim::radio::{RadioEnv, BLUETOOTH};
/// use ph_netsim::fault::{FaultPlan, FaultProfile};
/// use ph_netsim::Technology;
///
/// let mut bt = BLUETOOTH.clone();
/// bt.range_m = 20.0;
/// let env = RadioEnv::default()
///     .with_profile(Technology::Bluetooth, bt)
///     .with_faults(FaultPlan::none().with_profile(
///         Technology::Bluetooth,
///         FaultProfile { frame_loss: 0.10, ..FaultProfile::NONE },
///     ));
/// assert_eq!(env.profile(Technology::Bluetooth).range_m, 20.0);
/// assert!(!env.faults().is_inert());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RadioEnv {
    profiles: [TechnologyProfile; 3],
    faults: FaultPlan,
}

impl Default for RadioEnv {
    fn default() -> Self {
        RadioEnv {
            profiles: [BLUETOOTH.clone(), WLAN.clone(), GPRS.clone()],
            faults: FaultPlan::none(),
        }
    }
}

impl RadioEnv {
    /// Replaces the profile of one technology (builder style).
    pub fn with_profile(mut self, tech: Technology, profile: TechnologyProfile) -> Self {
        self.profiles[fault::tech_slot(tech)] = profile;
        self
    }

    /// Installs a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The active profile of one technology.
    pub fn profile(&self, tech: Technology) -> &TechnologyProfile {
        &self.profiles[fault::tech_slot(tech)]
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

impl Wire for Technology {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Technology::Bluetooth => 0,
            Technology::Wlan => 1,
            Technology::Gprs => 2,
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(Technology::Bluetooth),
            1 => Ok(Technology::Wlan),
            2 => Ok(Technology::Gprs),
            tag => Err(DecodeError::BadTag {
                what: "Technology",
                tag,
            }),
        }
    }
}

impl Wire for TechnologyProfile {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.range_m.encode_to(out);
        self.inquiry_duration.encode_to(out);
        self.response_window.encode_to(out);
        self.response_slot.encode_to(out);
        self.discovery_miss_prob.encode_to(out);
        self.connect_setup.encode_to(out);
        self.connect_jitter.encode_to(out);
        self.throughput_bps.encode_to(out);
        self.latency.encode_to(out);
        self.latency_jitter.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TechnologyProfile {
            range_m: f64::decode(input)?,
            inquiry_duration: std::time::Duration::decode(input)?,
            response_window: std::time::Duration::decode(input)?,
            response_slot: std::time::Duration::decode(input)?,
            discovery_miss_prob: f64::decode(input)?,
            connect_setup: std::time::Duration::decode(input)?,
            connect_jitter: std::time::Duration::decode(input)?,
            throughput_bps: f64::decode(input)?,
            latency: std::time::Duration::decode(input)?,
            latency_jitter: std::time::Duration::decode(input)?,
        })
    }
}

impl TechnologyProfile {
    /// Samples the time to push `bytes` application bytes over one
    /// established connection: latency (with jitter) plus serialization time
    /// at the effective throughput.
    pub fn transfer_time(&self, bytes: usize, rng: &mut SimRng) -> Duration {
        let serialize = Duration::from_secs_f64(bytes as f64 * 8.0 / self.throughput_bps);
        rng.jittered(self.latency, self.latency_jitter) + serialize
    }

    /// Samples connection-establishment time.
    pub fn connect_time(&self, rng: &mut SimRng) -> Duration {
        rng.jittered(self.connect_setup, self.connect_jitter)
    }

    /// Samples the offset within a discovery round at which a responding
    /// device is found: uniform within the response window, then rounded
    /// *up* to the seeker's next listen-slot boundary (see
    /// [`TechnologyProfile::response_slot`]) and clamped to the window.
    pub fn response_offset(&self, rng: &mut SimRng) -> Duration {
        let raw = rng.duration_up_to(self.response_window);
        let slot = self.response_slot.as_nanos();
        if slot == 0 {
            return raw;
        }
        let quantized = raw.as_nanos().div_ceil(slot) * slot;
        Duration::from_nanos(quantized.min(self.response_window.as_nanos()) as u64)
    }

    /// Whether a single discovery round misses an in-range device.
    pub fn discovery_misses(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.discovery_miss_prob)
    }

    /// Whether two nodes separated by `distance_m` metres are within radio
    /// range.
    pub fn in_range(&self, distance_m: f64) -> bool {
        distance_m <= self.range_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Technology::Bluetooth.name(), "Bluetooth");
        assert_eq!(Technology::Wlan.to_string(), "WLAN");
        assert_eq!(Technology::Gprs.name(), "GPRS");
    }

    #[test]
    fn all_lists_each_once() {
        let mut v = Technology::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn bluetooth_inquiry_is_spec_value() {
        assert_eq!(
            RadioEnv::default()
                .profile(Technology::Bluetooth)
                .inquiry_duration,
            Duration::from_millis(10_240)
        );
    }

    #[test]
    fn gprs_is_range_independent() {
        let env = RadioEnv::default();
        let p = env.profile(Technology::Gprs);
        assert!(p.in_range(0.0));
        assert!(p.in_range(1.0e9));
    }

    #[test]
    fn bluetooth_range_cutoff() {
        let env = RadioEnv::default();
        let p = env.profile(Technology::Bluetooth);
        assert!(p.in_range(9.99));
        assert!(!p.in_range(10.01));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let p = &BLUETOOTH;
        let mut rng = SimRng::from_seed(1);
        // 75 kB at 600 kbit/s is 1 s of serialization; latency adds < 0.1 s.
        let t = p.transfer_time(75_000, &mut rng);
        assert!(t >= Duration::from_secs(1), "{t:?}");
        assert!(t < Duration::from_millis(1_200), "{t:?}");
    }

    #[test]
    fn wlan_is_much_faster_than_gprs() {
        let mut rng = SimRng::from_seed(2);
        let big = 100_000;
        let wlan = WLAN.transfer_time(big, &mut rng);
        let gprs = GPRS.transfer_time(big, &mut rng);
        assert!(gprs > wlan * 10);
    }

    #[test]
    fn response_offset_within_window() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..100 {
            let off = BLUETOOTH.response_offset(&mut rng);
            assert!(off <= BLUETOOTH.response_window);
        }
    }

    #[test]
    fn response_offset_lands_on_listen_slots() {
        let mut rng = SimRng::from_seed(5);
        for tech in Technology::ALL {
            let p = RadioEnv::default().profile(tech).clone();
            let slot = p.response_slot.as_nanos();
            assert!(slot > 0, "{tech}: default profiles define a listen slot");
            for _ in 0..200 {
                let off = p.response_offset(&mut rng);
                assert!(off <= p.response_window, "{tech}: {off:?}");
                let on_grid = off.as_nanos() % slot == 0;
                assert!(
                    on_grid || off == p.response_window,
                    "{tech}: {off:?} not on the {slot} ns grid"
                );
            }
        }
    }

    #[test]
    fn zero_slot_disables_quantization() {
        let mut cont = BLUETOOTH.clone();
        cont.response_slot = Duration::ZERO;
        let mut rng = SimRng::from_seed(6);
        let mut off_grid = 0;
        for _ in 0..100 {
            let off = cont.response_offset(&mut rng);
            if !off
                .as_nanos()
                .is_multiple_of(BLUETOOTH.response_slot.as_nanos())
            {
                off_grid += 1;
            }
        }
        assert!(off_grid > 90, "unquantized draws should miss the grid");
    }

    #[test]
    fn connect_time_near_setup() {
        let mut rng = SimRng::from_seed(4);
        for _ in 0..100 {
            let t = BLUETOOTH.connect_time(&mut rng);
            assert!(t >= Duration::from_millis(600) && t <= Duration::from_millis(1300));
        }
    }

    #[test]
    fn profiles_wire_round_trip() {
        let env = RadioEnv::default();
        for tech in Technology::ALL {
            let p = env.profile(tech);
            let back = TechnologyProfile::decode_exact(&p.encode()).unwrap();
            assert_eq!(*p, back);
        }
    }

    #[test]
    fn radio_env_overrides_one_profile() {
        let mut fast_bt = BLUETOOTH.clone();
        fast_bt.connect_setup = Duration::from_millis(100);
        let env = RadioEnv::default().with_profile(Technology::Bluetooth, fast_bt);
        assert_eq!(
            env.profile(Technology::Bluetooth).connect_setup,
            Duration::from_millis(100)
        );
        // Other technologies keep their defaults.
        assert_eq!(env.profile(Technology::Wlan), &WLAN);
        assert!(env.faults().is_inert());
    }

    #[test]
    fn radio_env_carries_fault_plan() {
        use crate::fault::FaultProfile;
        let env = RadioEnv::default().with_faults(FaultPlan::none().with_profile(
            Technology::Gprs,
            FaultProfile {
                frame_loss: 0.3,
                ..FaultProfile::NONE
            },
        ));
        assert_eq!(env.faults().profile(Technology::Gprs).frame_loss, 0.3);
        assert!(!env.faults().is_inert());
    }

    #[test]
    fn technology_wire_round_trip() {
        for tech in Technology::ALL {
            let back = Technology::decode_exact(&tech.encode()).unwrap();
            assert_eq!(tech, back);
        }
        assert!(matches!(
            Technology::decode_exact(&[9]),
            Err(DecodeError::BadTag { .. })
        ));
    }
}
