//! Cross-crate integration tests: the full evaluation pipeline.
//!
//! These assert the *scientific claims* of the reproduction — every table
//! row executes, every figure conforms, and Table 8's shape (who wins, by
//! roughly what factor, where the crossovers fall) holds.

use harness::{ablations, functionality, msc, table8};

#[test]
fn table3_every_peerhood_functionality_verified() {
    for check in functionality::table3(424_242) {
        assert!(check.passed, "Table 3 row {:?}: {}", check.name, check.note);
    }
}

#[test]
fn table6_every_opcode_maps_to_its_server_function() {
    let checks = functionality::table6();
    assert_eq!(checks.len(), 11);
    for check in checks {
        assert!(check.passed, "Table 6 row {:?}: {}", check.name, check.note);
    }
}

#[test]
fn table7_every_feature_exercised() {
    let checks = functionality::table7(424_242);
    assert!(checks.len() >= 13, "Table 7 has at least 13 features");
    for check in checks {
        assert!(check.passed, "Table 7 row {:?}: {}", check.name, check.note);
    }
}

#[test]
fn table8_reproduces_the_paper_shape() {
    let report = table8::run(8, 77);
    let ph = report.peerhood();

    // Claim 1: PeerHood joins cost nothing (dynamic discovery pre-joined).
    assert_eq!(ph.summaries[1].mean, 0.0);

    // Claim 2: PeerHood's group search is dominated by one Bluetooth
    // inquiry (~10.24 s), far below any SNS arm's search.
    assert!(
        ph.summaries[0].mean > 9.0 && ph.summaries[0].mean < 16.0,
        "search {}",
        ph.summaries[0].mean
    );
    for sns_arm in &report.arms[..4] {
        assert!(
            sns_arm.summaries[0].mean > 2.0 * ph.summaries[0].mean,
            "{} search {} vs ph {}",
            sns_arm.arm,
            sns_arm.summaries[0].mean,
            ph.summaries[0].mean
        );
    }

    // Claim 3: overall, PeerHood beats every SNS arm by at least ~2x.
    for sns_arm in &report.arms[..4] {
        assert!(
            sns_arm.summaries[4].mean > 1.8 * ph.summaries[4].mean,
            "{} total {} vs ph {}",
            sns_arm.arm,
            sns_arm.summaries[4].mean,
            ph.summaries[4].mean
        );
    }

    // Claim 4: the crossover the paper shows — PeerHood's member-list /
    // profile tasks are *slower* than the best SNS arm's (FB on N810) but
    // still win on the total.
    let fb_n810 = &report.arms[0];
    assert!(
        ph.summaries[2].mean > fb_n810.summaries[2].mean,
        "member list: ph {} vs fb-n810 {}",
        ph.summaries[2].mean,
        fb_n810.summaries[2].mean
    );

    // Claim 5: device ordering — N95 slower than N810 on both sites.
    assert!(report.arms[1].summaries[4].mean > report.arms[0].summaries[4].mean);
    assert!(report.arms[3].summaries[4].mean > report.arms[2].summaries[4].mean);

    // Every measured mean is within a factor of 2.2 of the paper value
    // (most land far closer; the worst cell is the FB/N95 member list,
    // which is internally inconsistent in the paper itself — see
    // EXPERIMENTS.md).
    for arm in &report.arms {
        let paper = [
            arm.paper.search,
            arm.paper.join,
            arm.paper.list,
            arm.paper.profile,
            arm.paper.total,
        ];
        for (i, &p) in paper.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let m = arm.summaries[i].mean;
            let ratio = if m > p { m / p } else { p / m };
            assert!(
                ratio < 2.2,
                "{} row {} measured {:.1} vs paper {:.0} (x{:.2})",
                arm.arm,
                table8::TASKS[i],
                m,
                p,
                ratio
            );
        }
    }
}

#[test]
fn every_msc_figure_conforms() {
    for op in msc::MscOp::ALL {
        let run = msc::run(op, 31_337);
        assert!(
            run.conforms,
            "figure {} does not conform; labels: {:?}",
            op.figure(),
            run.trace.labels()
        );
        assert!(!run.trace.is_empty());
    }
}

#[test]
fn table8_is_deterministic_per_seed() {
    let a = table8::run(3, 99);
    let b = table8::run(3, 99);
    for (x, y) in a.arms.iter().zip(b.arms.iter()) {
        for i in 0..5 {
            assert_eq!(
                x.summaries[i].mean, y.summaries[i].mean,
                "{} row {i}",
                x.arm
            );
        }
    }
}

#[test]
fn semantics_ablation_monotone_in_spellings() {
    let mut last_coverage = 1.1f64;
    for spellings in [1usize, 2, 4] {
        let r = ablations::semantics(60, 4, spellings, 5);
        assert_eq!(
            r.semantic_groups, 4,
            "teaching always folds every family back to one group"
        );
        assert!(
            (r.semantic_coverage - 1.0).abs() < 1e-9,
            "taught matching always captures every member"
        );
        assert!(
            r.exact_coverage < last_coverage,
            "more spellings must fragment away more members: {} then {}",
            last_coverage,
            r.exact_coverage
        );
        last_coverage = r.exact_coverage;
    }
}
