//! Scale stress tests: far beyond the thesis's four-device room.

use netsim::geometry::{Point2, Rect};
use netsim::mobility::RandomWaypoint;
use netsim::world::NodeBuilder;
use netsim::{SimRng, SimTime, Technology};
use peerhood::sim::Cluster;

use community::node::CommunityApp;
use community::profile::Profile;
use community::OpResult;
use std::time::Duration;

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

#[test]
fn thirty_device_conference_room() {
    // A conference room: 30 devices in one Bluetooth cell, interests drawn
    // from a pool of 6 topics, everyone also sharing "the conference".
    let topics = ["p2p", "sensors", "security", "protocols", "ux", "energy"];
    let mut c = Cluster::new(31415);
    let mut nodes = Vec::new();
    for i in 0..30 {
        let angle = i as f64 / 30.0 * std::f64::consts::TAU;
        // Radius 4.5 m: everyone within 9 m of everyone.
        let pos = Point2::new(4.5 * angle.cos(), 4.5 * angle.sin());
        let interests = vec!["the conference", topics[i % topics.len()]];
        nodes.push(
            c.add_node(
                NodeBuilder::new(format!("dev{i}"))
                    .at(pos)
                    .with_technologies([Technology::Bluetooth]),
                member(&format!("attendee{i}"), &interests),
            ),
        );
    }
    c.start();
    c.run_until(SimTime::from_secs(120));

    // The plenary group reaches everyone...
    let groups = c.app(nodes[0]).groups();
    let plenary = groups
        .iter()
        .find(|g| g.key == "the conference")
        .expect("plenary group");
    assert_eq!(plenary.members.len(), 30, "{:?}", plenary.members.len());
    // ...and each topic group holds exactly its fifth of the attendees.
    let topic = groups.iter().find(|g| g.key == "p2p").expect("topic group");
    assert_eq!(topic.members.len(), 5, "{:?}", topic.members);

    // A member-list fan-out over 29 persistent connections completes fast.
    let op = c.with_app(nodes[0], |app, ctx| app.get_member_list(ctx));
    c.run_for(Duration::from_secs(30));
    match &c.app(nodes[0]).outcome(op).expect("completed").result {
        OpResult::Members(names) => assert_eq!(names.len(), 29),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn twenty_wanderers_never_wedge_the_simulation() {
    // Long-running mobile chaos: 20 devices random-waypointing through a
    // field for 20 simulated minutes. The invariant under test is
    // liveness + self-consistency, not a specific group layout.
    let area = Rect::sized(80.0, 80.0);
    let mut c = Cluster::new(2718);
    let mut rng = SimRng::from_seed(999);
    let mut nodes = Vec::new();
    for i in 0..20 {
        let start = Point2::new(rng.range_f64(5.0..75.0), rng.range_f64(5.0..75.0));
        nodes.push(
            c.add_node(
                NodeBuilder::new(format!("w{i}"))
                    .moving(RandomWaypoint::new(
                        area,
                        start,
                        (0.7, 2.0),
                        (Duration::from_secs(5), Duration::from_secs(40)),
                        rng.fork(i),
                    ))
                    .with_technologies([Technology::Bluetooth]),
                member(&format!("w{i}"), &["meshing"]),
            ),
        );
    }
    c.start();
    c.run_until(SimTime::from_secs(20 * 60));

    // Sanity: time advanced fully and every app's view is self-consistent.
    assert_eq!(c.now(), SimTime::from_secs(20 * 60));
    let mut total_events = 0;
    for &n in &nodes {
        let app = c.app(n);
        for g in app.groups() {
            assert!(g.members.len() >= 2);
            let mut sorted = g.members.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted, g.members, "sorted unique members");
        }
        total_events += app.group_events().len();
    }
    assert!(
        total_events > 20,
        "twenty minutes of wandering must churn groups, saw {total_events} events"
    );
}

#[test]
fn conference_scale_run_is_deterministic() {
    fn run() -> (usize, usize) {
        let mut c = Cluster::new(161803);
        let mut nodes = Vec::new();
        for i in 0..12 {
            let pos = Point2::new((i % 4) as f64 * 2.5, (i / 4) as f64 * 2.5);
            nodes.push(c.add_node(
                NodeBuilder::new(format!("d{i}")).at(pos),
                member(
                    &format!("m{i}"),
                    &["x", if i % 2 == 0 { "even" } else { "odd" }],
                ),
            ));
        }
        c.start();
        c.run_until(SimTime::from_secs(90));
        let app = c.app(nodes[0]);
        (
            app.groups().iter().map(|g| g.members.len()).sum(),
            app.group_events().len(),
        )
    }
    assert_eq!(run(), run());
}
