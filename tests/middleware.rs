//! Cross-crate integration tests: middleware behaviour under larger and
//! nastier conditions than the paper's four-device lab.

use std::time::Duration;

use community::node::{CommunityApp, OpMode};
use community::profile::Profile;
use community::OpResult;
use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};
use peerhood::sim::Cluster;

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

#[test]
fn ten_device_neighborhood_converges() {
    let mut c = Cluster::new(1234);
    let mut nodes = Vec::new();
    for i in 0..10 {
        let angle = i as f64 / 10.0 * std::f64::consts::TAU;
        let pos = Point2::new(4.0 * angle.cos(), 4.0 * angle.sin());
        let interests: Vec<String> = vec!["common".to_owned(), format!("special-{}", i % 3)];
        let interests_ref: Vec<&str> = interests.iter().map(String::as_str).collect();
        nodes.push(c.add_node(
            NodeBuilder::new(format!("dev{i}")).at(pos),
            member(&format!("m{i}"), &interests_ref),
        ));
    }
    c.start();
    c.run_until(SimTime::from_secs(90));

    // Everyone ends in the 10-member "common" group.
    for (i, &n) in nodes.iter().enumerate() {
        let groups = c.app(n).groups();
        let common = groups
            .iter()
            .find(|g| g.key == "common")
            .unwrap_or_else(|| panic!("node {i} missing the common group: {groups:?}"));
        assert_eq!(common.members.len(), 10, "node {i}: {:?}", common.members);
        // And the special-k groups hold ceil-ish thirds.
        let special = groups
            .iter()
            .find(|g| g.key == format!("special-{}", i % 3))
            .unwrap_or_else(|| panic!("node {i} missing its special group"));
        assert!(special.members.len() >= 3, "{:?}", special.members);
    }
}

#[test]
fn community_operation_survives_technology_handover() {
    // Alice and Bob hold a community connection over Bluetooth; Bob walks
    // to WLAN-only distance mid-session; the next operation still works.
    let mut c = Cluster::new(5678);
    let a = c.add_node(
        NodeBuilder::new("alice-pc")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth, Technology::Wlan]),
        member("alice", &["x"]),
    );
    let _b = c.add_node(
        NodeBuilder::new("bob-laptop")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(60), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(75), Point2::new(45.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth, Technology::Wlan]),
        member("bob", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));
    assert_eq!(c.app(a).groups().len(), 1, "group before the walk");

    // After the walk: Bob is at 45 m (WLAN only). The persistent
    // connection hands over; operations keep working.
    c.run_until(SimTime::from_secs(120));
    let op = c.with_app(a, |app, ctx| app.view_profile("bob", ctx));
    c.run_for(Duration::from_secs(20));
    match &c.app(a).outcome(op).expect("completed").result {
        OpResult::Profile(Some(view)) => assert_eq!(view.member, "bob"),
        other => panic!("profile after handover failed: {other:?}"),
    }
    assert_eq!(
        c.app(a).groups().len(),
        1,
        "group survives the walk via WLAN"
    );
}

#[test]
fn per_operation_mode_matches_persistent_mode_results() {
    // The two connection modes must return identical *data* — they differ
    // only in cost.
    fn run(mode: OpMode) -> (Vec<String>, Vec<String>) {
        let mut c = Cluster::new(9999);
        let a = c.add_node(
            NodeBuilder::new("a-pc").at(Point2::ORIGIN),
            member("alice", &["x", "y"]).with_op_mode(mode),
        );
        for (i, (name, ints)) in [("bob", ["x", "z"]), ("carol", ["y", "z"])]
            .iter()
            .enumerate()
        {
            let ints_ref: Vec<&str> = ints.to_vec();
            c.add_node(
                NodeBuilder::new(format!("{name}-pc")).at(Point2::new(3.0, i as f64 * 2.0)),
                member(name, &ints_ref).with_op_mode(mode),
            );
        }
        c.start();
        c.run_until(SimTime::from_secs(60));
        let op = c.with_app(a, |app, ctx| app.get_member_list(ctx));
        c.run_for(Duration::from_secs(60));
        let members = match &c.app(a).outcome(op).expect("completed").result {
            OpResult::Members(m) => m.clone(),
            other => panic!("{other:?}"),
        };
        let groups: Vec<String> = c.app(a).groups().iter().map(|g| g.key.clone()).collect();
        (members, groups)
    }
    let persistent = run(OpMode::Persistent);
    let per_op = run(OpMode::PerOperation);
    assert_eq!(persistent, per_op);
    assert_eq!(persistent.0, vec!["bob", "carol"]);
    assert_eq!(persistent.1, vec!["x", "y"]);
}

#[test]
fn store_state_survives_json_round_trip_mid_session() {
    // Profile/message persistence: serialize a store that accumulated
    // session state, restore it, and keep using it.
    let mut c = Cluster::new(4321);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let b = c.add_node(
        NodeBuilder::new("b").at(Point2::new(3.0, 0.0)),
        member("bob", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));
    let op = c.with_app(a, |app, ctx| app.send_message("bob", "s", "b", ctx));
    c.run_for(Duration::from_secs(10));
    assert!(matches!(
        c.app(a).outcome(op).unwrap().result,
        OpResult::MessageResult { written: true }
    ));

    let snapshot = c.app(b).store().to_snapshot();
    let restored = community::MemberStore::from_snapshot(&snapshot).expect("valid snapshot");
    assert_eq!(
        restored.active_account().unwrap().mailbox.inbox().len(),
        1,
        "received message persisted"
    );
    assert_eq!(restored.active_member(), Some("bob"));
}

#[test]
fn logged_out_devices_answer_no_members_yet() {
    // A device running the service with nobody logged in participates in
    // discovery but contributes no member.
    let mut store = community::MemberStore::new();
    store
        .create_account("ghost", "pw", Profile::new("Ghost").with_interests(["x"]))
        .expect("fresh");
    // note: NOT logged in.
    let ghost_app = CommunityApp::new(store);

    let mut c = Cluster::new(8765);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let _g = c.add_node(NodeBuilder::new("g").at(Point2::new(3.0, 0.0)), ghost_app);
    c.start();
    c.run_until(SimTime::from_secs(40));

    assert!(c.app(a).groups().is_empty(), "no member, no group");
    let op = c.with_app(a, |app, ctx| app.get_member_list(ctx));
    c.run_for(Duration::from_secs(10));
    match &c.app(a).outcome(op).expect("completed").result {
        OpResult::Members(names) => assert!(names.is_empty(), "{names:?}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn late_login_brings_the_member_online() {
    let mut store = community::MemberStore::new();
    store
        .create_account(
            "sleeper",
            "pw",
            Profile::new("Sleeper").with_interests(["x"]),
        )
        .expect("fresh");
    let app = CommunityApp::new(store);

    let mut c = Cluster::new(1357);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let s = c.add_node(NodeBuilder::new("s").at(Point2::new(3.0, 0.0)), app);
    c.start();
    c.run_until(SimTime::from_secs(40));
    assert!(c.app(a).groups().is_empty());

    // The sleeper logs in; alice's periodic refresh picks the member up.
    c.with_app(s, |app, _| app.login("sleeper", "pw").expect("valid"));
    c.run_until(SimTime::from_secs(120));
    let groups = c.app(a).groups();
    assert_eq!(groups.len(), 1, "{groups:?}");
    assert!(groups[0].members.contains(&"sleeper".to_owned()));
}
