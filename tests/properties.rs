//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use community::discovery::discover_groups;
use community::semantics::{MatchPolicy, SynonymTable};
use community::{Interest, InterestSet, ProfileView, Request, Response};
use netsim::geometry::{Point2, Rect};
use netsim::mobility::{Mobility, RandomWaypoint, RandomWalk};
use netsim::stats::Summary;
use netsim::{SimRng, SimTime};
use std::time::Duration;

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _-]{0,24}"
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::GetOnlineMemberList),
        Just(Request::GetInterestList),
        arb_name().prop_map(|interest| Request::GetInterestedMemberList { interest }),
        (arb_name(), arb_name()).prop_map(|(member, requester)| Request::GetProfile {
            member,
            requester
        }),
        (arb_name(), arb_name(), ".{0,200}").prop_map(|(member, author, comment)| {
            Request::AddProfileComment {
                member,
                author,
                comment,
            }
        }),
        arb_name().prop_map(|member| Request::CheckMemberId { member }),
        (arb_name(), arb_name(), arb_name(), ".{0,200}").prop_map(
            |(to, from, subject, body)| Request::Message {
                to,
                from,
                subject,
                body
            }
        ),
        (arb_name(), arb_name()).prop_map(|(member, requester)| Request::GetSharedContent {
            member,
            requester
        }),
        arb_name().prop_map(|member| Request::GetTrustedFriends { member }),
        (arb_name(), arb_name()).prop_map(|(member, requester)| Request::CheckTrusted {
            member,
            requester
        }),
        (arb_name(), arb_name(), arb_name()).prop_map(|(member, requester, name)| {
            Request::FetchContent {
                member,
                requester,
                name,
            }
        }),
    ]
}

fn arb_names() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_name(), 0..6)
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_names().prop_map(Response::MemberList),
        arb_names().prop_map(Response::InterestList),
        arb_names().prop_map(Response::TrustedFriends),
        Just(Response::NoMembersYet),
        Just(Response::CommentWritten),
        any::<bool>().prop_map(Response::CheckMemberResult),
        Just(Response::MessageWritten),
        Just(Response::MessageFailed),
        Just(Response::NotTrustedYet),
        Just(Response::Trusted),
        (arb_name(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(name, data)| Response::Content { name, data }),
        ".{0,80}".prop_map(Response::Error),
        (arb_name(), arb_name(), arb_names()).prop_map(|(member, display_name, interests)| {
            Response::Profile(ProfileView {
                member,
                display_name,
                interests,
                ..ProfileView::default()
            })
        }),
    ]
}

proptest! {
    #[test]
    fn request_codec_round_trips(req in arb_request()) {
        let frame = req.encode();
        prop_assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    #[test]
    fn response_codec_round_trips(resp in arb_response()) {
        let frame = resp.encode();
        prop_assert_eq!(Response::decode(&frame).unwrap(), resp);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics and hangs are not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn truncated_valid_frames_error_not_panic(req in arb_request(), cut in 0usize..32) {
        let mut frame = req.encode();
        if cut < frame.len() {
            frame.truncate(frame.len() - cut);
            if cut > 0 {
                let _ = Request::decode(&frame); // must not panic
            }
        }
    }
}

// ---------------------------------------------------------------------
// Interests and semantics
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn interest_normalization_is_idempotent(s in ".{0,40}") {
        let a = Interest::new(&s);
        let b = Interest::new(a.key());
        prop_assert_eq!(a.key(), b.key());
        // Display form also normalizes stably.
        let c = Interest::new(a.display());
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn interest_set_add_then_remove_is_noop(items in proptest::collection::vec("[a-z ]{1,12}", 0..10), extra in "[a-z]{1,12}") {
        let mut set: InterestSet = items.iter().map(Interest::new).collect();
        let before = set.clone();
        let fresh = set.add(Interest::new(&extra));
        if fresh {
            set.remove(Interest::new(&extra));
        }
        prop_assert_eq!(set, before);
    }

    #[test]
    fn synonym_canonical_is_class_stable(pairs in proptest::collection::vec(("[a-e]", "[a-e]"), 0..12)) {
        let mut table = SynonymTable::new();
        for (a, b) in &pairs {
            table.teach(&Interest::new(a), &Interest::new(b));
        }
        // canonical(x) == canonical(y) iff same(x, y), for all pairs in the
        // small alphabet.
        for x in ["a", "b", "c", "d", "e"] {
            for y in ["a", "b", "c", "d", "e"] {
                let same = table.same(&Interest::new(x), &Interest::new(y));
                let canon_eq = table.canonical_key(x) == table.canonical_key(y);
                prop_assert_eq!(same, canon_eq, "{} vs {}", x, y);
            }
        }
        // The canonical key is a member of its own class.
        for x in ["a", "b", "c", "d", "e"] {
            let c = table.canonical_key(x);
            prop_assert!(table.same(&Interest::new(x), &Interest::new(&c)));
        }
    }
}

// ---------------------------------------------------------------------
// Dynamic group discovery (Figure 6)
// ---------------------------------------------------------------------

fn arb_interests() -> impl Strategy<Value = Vec<Interest>> {
    proptest::collection::vec("[a-f]", 0..5)
        .prop_map(|v| v.into_iter().map(Interest::new).collect())
}

fn arb_neighbors() -> impl Strategy<Value = Vec<(String, Vec<Interest>)>> {
    proptest::collection::vec(arb_interests(), 0..8).prop_map(|vs| {
        vs.into_iter()
            .enumerate()
            .map(|(i, ints)| (format!("n{i}"), ints))
            .collect()
    })
}

proptest! {
    #[test]
    fn groups_always_contain_me_and_only_known_members(
        own in arb_interests(),
        neighbors in arb_neighbors()
    ) {
        let groups = discover_groups("me", &own, &neighbors, &MatchPolicy::Exact);
        let known: Vec<&str> = neighbors.iter().map(|(n, _)| n.as_str()).collect();
        for group in groups.values() {
            prop_assert!(group.contains("me"), "group {:?}", group.key);
            prop_assert!(group.members.len() >= 2);
            for m in &group.members {
                prop_assert!(m == "me" || known.contains(&m.as_str()));
            }
            // The key corresponds to one of my own interests.
            prop_assert!(own.iter().any(|i| i.key() == group.key));
            // Members are sorted and unique.
            let mut sorted = group.members.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(&sorted, &group.members);
        }
    }

    #[test]
    fn adding_a_neighbor_never_shrinks_groups(
        own in arb_interests(),
        neighbors in arb_neighbors(),
        extra in arb_interests()
    ) {
        let before = discover_groups("me", &own, &neighbors, &MatchPolicy::Exact);
        let mut more = neighbors.clone();
        more.push(("newcomer".to_owned(), extra));
        let after = discover_groups("me", &own, &more, &MatchPolicy::Exact);
        for (key, group) in &before {
            let bigger = after.get(key).expect("existing groups persist");
            for m in &group.members {
                prop_assert!(bigger.contains(m), "{m} lost from {key}");
            }
        }
    }

    #[test]
    fn semantic_matching_only_merges_never_splits(
        own in arb_interests(),
        neighbors in arb_neighbors(),
        taught in proptest::collection::vec(("[a-f]", "[a-f]"), 0..6)
    ) {
        let exact = discover_groups("me", &own, &neighbors, &MatchPolicy::Exact);
        let mut policy = MatchPolicy::Exact;
        for (a, b) in &taught {
            policy.teach(&Interest::new(a), &Interest::new(b));
        }
        let semantic = discover_groups("me", &own, &neighbors, &policy);
        // Teaching synonyms can create matches that exact matching lacked
        // (that is its purpose) — but it never *loses* anything: every
        // exact group folds, member-complete, into the semantic group of
        // its canonical key.
        for (key, group) in &exact {
            let canon = policy.group_key(&Interest::new(key));
            let folded = semantic
                .get(&canon)
                .unwrap_or_else(|| panic!("group {key} vanished (canonical {canon})"));
            for m in &group.members {
                prop_assert!(folded.contains(m), "{m} lost from {key} -> {canon}");
            }
        }
        // And the semantic group count never exceeds the number of
        // distinct canonical keys among my own interests.
        let canon_keys: std::collections::BTreeSet<String> =
            own.iter().map(|i| policy.group_key(i)).collect();
        prop_assert!(semantic.len() <= canon_keys.len());
    }
}

// ---------------------------------------------------------------------
// Simulator substrate
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn random_waypoint_never_escapes_its_area(seed in any::<u64>(), w in 10.0f64..200.0, h in 10.0f64..200.0) {
        let area = Rect::sized(w, h);
        let mut m = RandomWaypoint::new(
            area,
            area.center(),
            (0.5, 3.0),
            (Duration::ZERO, Duration::from_secs(10)),
            SimRng::from_seed(seed),
        );
        for s in (0..600).step_by(7) {
            let p = m.position(SimTime::from_secs(s));
            prop_assert!(area.contains(p), "escaped at {s}s: {p}");
        }
    }

    #[test]
    fn random_walk_never_escapes_its_area(seed in any::<u64>()) {
        let area = Rect::sized(30.0, 30.0);
        let mut m = RandomWalk::new(
            area,
            Point2::new(15.0, 15.0),
            1.4,
            Duration::from_secs(3),
            SimRng::from_seed(seed),
        );
        for s in 0..300 {
            prop_assert!(area.contains(m.position(SimTime::from_secs(s))));
        }
    }

    #[test]
    fn mobility_is_a_function_of_time(seed in any::<u64>(), queries in proptest::collection::vec(0u64..500, 1..20)) {
        // Arbitrary (even non-monotonic) query orders give identical
        // answers to a fresh instance queried in order.
        let area = Rect::sized(50.0, 50.0);
        let mk = || RandomWaypoint::new(
            area,
            area.center(),
            (1.0, 2.0),
            (Duration::ZERO, Duration::from_secs(5)),
            SimRng::from_seed(seed),
        );
        let mut scrambled = mk();
        let answers: Vec<(u64, Point2)> = queries
            .iter()
            .map(|&s| (s, scrambled.position(SimTime::from_secs(s))))
            .collect();
        let mut ordered = mk();
        let mut sorted = queries.clone();
        sorted.sort_unstable();
        // Warm the ordered instance to the horizon first.
        let max = *sorted.last().expect("non-empty");
        ordered.position(SimTime::from_secs(max));
        for (s, expected) in answers {
            prop_assert_eq!(ordered.position(SimTime::from_secs(s)), expected);
        }
    }

    #[test]
    fn summary_bounds_hold(samples in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let s = Summary::from_samples(&samples).expect("non-empty");
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
        prop_assert!(s.p50 <= s.p90 + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn simtime_add_then_since_round_trips(base in 0u64..1_000_000, d in 0u64..1_000_000) {
        let t = SimTime::from_micros(base);
        let later = t + Duration::from_micros(d);
        prop_assert_eq!(later.saturating_since(t), Duration::from_micros(d));
    }
}
