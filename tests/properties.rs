//! Property-based tests over the core data structures and invariants.
//!
//! These run on the in-repo deterministic harness ([`codec::prop`]) instead
//! of `proptest` (zero-dependency policy, see `DESIGN.md`). Failures print a
//! replay seed; set `PH_PROP_SEED` to reproduce, `PH_PROP_CASES` to change
//! the case count. Regression seeds retained from the proptest era are
//! replayed first via `tests/properties.proptest-regressions`.

use codec::prop::{check, Config, Gen};

use community::content::ContentInfo;
use community::discovery::Discovery;
use community::protocol::WIRE_VERSION;
use community::semantics::{MatchPolicy, SynonymTable};
use community::{Interest, InterestSet, ProfileView, Request, Response};
use netsim::geometry::{Point2, Rect};
use netsim::mobility::{Mobility, RandomWalk, RandomWaypoint};
use netsim::stats::Summary;
use netsim::{SimRng, SimTime};
use std::time::Duration;

fn cfg() -> Config {
    Config::default()
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

const NAME_CHARSET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";

fn gen_name(g: &mut Gen) -> String {
    g.string_from(NAME_CHARSET, 0, 24)
}

fn gen_names(g: &mut Gen) -> Vec<String> {
    g.vec_of(6, gen_name)
}

fn gen_text(g: &mut Gen) -> String {
    g.ascii_string(200)
}

/// Number of [`Request`] variants; [`gen_request_variant`] must cover each.
const REQUEST_VARIANTS: usize = 11;

/// Number of [`Response`] variants; [`gen_response_variant`] must cover each.
const RESPONSE_VARIANTS: usize = 15;

fn gen_request_variant(g: &mut Gen, variant: usize) -> Request {
    match variant {
        0 => Request::GetOnlineMemberList,
        1 => Request::GetInterestList,
        2 => Request::GetInterestedMemberList {
            interest: gen_name(g),
        },
        3 => Request::GetProfile {
            member: gen_name(g),
            requester: gen_name(g),
        },
        4 => Request::AddProfileComment {
            member: gen_name(g),
            author: gen_name(g),
            comment: gen_text(g),
        },
        5 => Request::CheckMemberId {
            member: gen_name(g),
        },
        6 => Request::Message {
            to: gen_name(g),
            from: gen_name(g),
            subject: gen_name(g),
            body: gen_text(g),
        },
        7 => Request::GetSharedContent {
            member: gen_name(g),
            requester: gen_name(g),
        },
        8 => Request::GetTrustedFriends {
            member: gen_name(g),
        },
        9 => Request::CheckTrusted {
            member: gen_name(g),
            requester: gen_name(g),
        },
        _ => Request::FetchContent {
            member: gen_name(g),
            requester: gen_name(g),
            name: gen_name(g),
        },
    }
}

fn gen_request(g: &mut Gen) -> Request {
    let variant = g.usize(REQUEST_VARIANTS);
    gen_request_variant(g, variant)
}

fn gen_profile_view(g: &mut Gen) -> ProfileView {
    let mut view = ProfileView {
        member: gen_name(g),
        display_name: gen_name(g),
        interests: gen_names(g),
        trusted: gen_names(g),
        comments: g.vec_of(4, gen_text),
        ..ProfileView::default()
    };
    for _ in 0..g.usize(4) {
        let key = gen_name(g);
        let value = gen_text(g);
        view.fields.insert(key, value);
    }
    view
}

fn gen_content_info(g: &mut Gen) -> ContentInfo {
    ContentInfo {
        name: gen_name(g),
        size: g.any_u64(),
        kind: gen_name(g),
    }
}

fn gen_response_variant(g: &mut Gen, variant: usize) -> Response {
    match variant {
        0 => Response::MemberList(gen_names(g)),
        1 => Response::InterestList(gen_names(g)),
        2 => Response::InterestedMembers(gen_names(g)),
        3 => Response::Profile(gen_profile_view(g)),
        4 => Response::NoMembersYet,
        5 => Response::CommentWritten,
        6 => Response::CheckMemberResult(g.bool()),
        7 => Response::MessageWritten,
        8 => Response::MessageFailed,
        9 => Response::SharedContent(g.vec_of(4, gen_content_info)),
        10 => Response::NotTrustedYet,
        11 => Response::TrustedFriends(gen_names(g)),
        12 => Response::Trusted,
        13 => Response::Content {
            name: gen_name(g),
            data: g.bytes(512).into(),
        },
        _ => Response::Error(g.ascii_string(80)),
    }
}

fn gen_response(g: &mut Gen) -> Response {
    let variant = g.usize(RESPONSE_VARIANTS);
    gen_response_variant(g, variant)
}

#[test]
fn request_codec_round_trips() {
    check(&cfg(), "request_codec_round_trips", gen_request, |req| {
        let frame = req.encode();
        assert_eq!(frame[0], WIRE_VERSION);
        assert_eq!(&Request::decode(&frame).unwrap(), req);
    });
}

#[test]
fn response_codec_round_trips() {
    check(&cfg(), "response_codec_round_trips", gen_response, |resp| {
        let frame = resp.encode();
        assert_eq!(frame[0], WIRE_VERSION);
        assert_eq!(&Response::decode(&frame).unwrap(), resp);
    });
}

/// Pins the 100%-of-variants guarantee: every variant index round-trips, so
/// a new variant without a generator arm fails here rather than silently
/// thinning random coverage.
#[test]
fn every_variant_index_round_trips() {
    let mut cfg = Config::with_cases(32);
    cfg.seed = 0x9e37_79b9_7f4a_7c15;
    for variant in 0..REQUEST_VARIANTS {
        check(
            &cfg,
            &format!("request_variant_{variant}"),
            |g| gen_request_variant(g, variant),
            |req| {
                assert_eq!(&Request::decode(&req.encode()).unwrap(), req);
            },
        );
    }
    for variant in 0..RESPONSE_VARIANTS {
        check(
            &cfg,
            &format!("response_variant_{variant}"),
            |g| gen_response_variant(g, variant),
            |resp| {
                assert_eq!(&Response::decode(&resp.encode()).unwrap(), resp);
            },
        );
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    check(
        &cfg(),
        "decoder_never_panics_on_garbage",
        |g| {
            let mut bytes = g.bytes(256);
            // Half the time, force a valid version byte so the fuzz reaches
            // the opcode and payload decoders instead of stopping at the
            // version check.
            if !bytes.is_empty() && g.bool() {
                bytes[0] = WIRE_VERSION;
            }
            bytes
        },
        |bytes| {
            // Errors are fine; panics and hangs are not.
            let _ = Request::decode(bytes);
            let _ = Response::decode(bytes);
        },
    );
}

#[test]
fn truncated_valid_frames_error_not_panic() {
    check(
        &cfg(),
        "truncated_valid_frames_error_not_panic",
        |g| (gen_request(g), g.usize(32)),
        |(req, cut)| {
            let mut frame = req.encode();
            if *cut > 0 && *cut < frame.len() {
                frame.truncate(frame.len() - cut);
                assert!(Request::decode(&frame).is_err(), "truncated frame decoded");
            }
        },
    );
}

// ---------------------------------------------------------------------
// Interests and semantics
// ---------------------------------------------------------------------

#[test]
fn interest_normalization_is_idempotent() {
    check(
        &cfg(),
        "interest_normalization_is_idempotent",
        |g| g.ascii_string(40),
        |s| {
            let a = Interest::new(s);
            let b = Interest::new(a.key());
            assert_eq!(a.key(), b.key());
            // Display form also normalizes stably.
            let c = Interest::new(a.display());
            assert_eq!(&a, &c);
        },
    );
}

#[test]
fn interest_set_add_then_remove_is_noop() {
    check(
        &cfg(),
        "interest_set_add_then_remove_is_noop",
        |g| {
            let items = g.vec_of(10, |g| g.string_from("abcdefghijklmnopqrstuvwxyz ", 1, 12));
            let extra = g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 12);
            (items, extra)
        },
        |(items, extra)| {
            let mut set: InterestSet = items.iter().map(Interest::new).collect();
            let before = set.clone();
            let fresh = set.add(Interest::new(extra));
            if fresh {
                set.remove(Interest::new(extra));
            }
            assert_eq!(set, before);
        },
    );
}

fn gen_letter_pairs(g: &mut Gen, alphabet: &str, max: usize) -> Vec<(String, String)> {
    g.vec_of(max, |g| {
        (g.string_from(alphabet, 1, 1), g.string_from(alphabet, 1, 1))
    })
}

#[test]
fn synonym_canonical_is_class_stable() {
    check(
        &cfg(),
        "synonym_canonical_is_class_stable",
        |g| gen_letter_pairs(g, "abcde", 12),
        |pairs| {
            let mut table = SynonymTable::new();
            for (a, b) in pairs {
                table.teach(&Interest::new(a), &Interest::new(b));
            }
            // canonical(x) == canonical(y) iff same(x, y), for all pairs in
            // the small alphabet.
            for x in ["a", "b", "c", "d", "e"] {
                for y in ["a", "b", "c", "d", "e"] {
                    let same = table.same(&Interest::new(x), &Interest::new(y));
                    let canon_eq = table.canonical_key(x) == table.canonical_key(y);
                    assert_eq!(same, canon_eq, "{x} vs {y}");
                }
            }
            // The canonical key is a member of its own class.
            for x in ["a", "b", "c", "d", "e"] {
                let c = table.canonical_key(x);
                assert!(table.same(&Interest::new(x), &Interest::new(&c)));
            }
        },
    );
}

// ---------------------------------------------------------------------
// Dynamic group discovery (Figure 6)
// ---------------------------------------------------------------------

fn gen_interests(g: &mut Gen) -> Vec<Interest> {
    g.vec_of(5, |g| Interest::new(g.string_from("abcdef", 1, 1)))
}

fn gen_neighbors(g: &mut Gen) -> Vec<(String, Vec<Interest>)> {
    g.vec_of(8, gen_interests)
        .into_iter()
        .enumerate()
        .map(|(i, ints)| (format!("n{i}"), ints))
        .collect()
}

#[test]
fn groups_always_contain_me_and_only_known_members() {
    check(
        &cfg(),
        "groups_always_contain_me_and_only_known_members",
        |g| (gen_interests(g), gen_neighbors(g)),
        |(own, neighbors)| {
            let groups = Discovery::new("me", &MatchPolicy::Exact).groups(own, neighbors);
            let known: Vec<&str> = neighbors.iter().map(|(n, _)| n.as_str()).collect();
            for group in groups.values() {
                assert!(group.contains("me"), "group {:?}", group.key);
                assert!(group.members.len() >= 2);
                for m in &group.members {
                    assert!(m == "me" || known.contains(&m.as_str()));
                }
                // The key corresponds to one of my own interests.
                assert!(own.iter().any(|i| i.key() == group.key));
                // Members are sorted and unique.
                let mut sorted = group.members.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(&sorted, &group.members);
            }
        },
    );
}

#[test]
fn adding_a_neighbor_never_shrinks_groups() {
    check(
        &cfg(),
        "adding_a_neighbor_never_shrinks_groups",
        |g| (gen_interests(g), gen_neighbors(g), gen_interests(g)),
        |(own, neighbors, extra)| {
            let before = Discovery::new("me", &MatchPolicy::Exact).groups(own, neighbors);
            let mut more = neighbors.clone();
            more.push(("newcomer".to_owned(), extra.clone()));
            let after = Discovery::new("me", &MatchPolicy::Exact).groups(own, &more);
            for (key, group) in &before {
                let bigger = after.get(key).expect("existing groups persist");
                for m in &group.members {
                    assert!(bigger.contains(m), "{m} lost from {key}");
                }
            }
        },
    );
}

/// Shared body of the semantic-merge property, also exercised directly by
/// [`semantic_merge_regression_case`].
fn assert_semantic_only_merges(
    own: &[Interest],
    neighbors: &[(String, Vec<Interest>)],
    taught: &[(String, String)],
) {
    let exact = Discovery::new("me", &MatchPolicy::Exact).groups(own, neighbors);
    let mut policy = MatchPolicy::Exact;
    for (a, b) in taught {
        policy.teach(&Interest::new(a), &Interest::new(b));
    }
    let semantic = Discovery::new("me", &policy).groups(own, neighbors);
    // Teaching synonyms can create matches that exact matching lacked
    // (that is its purpose) — but it never *loses* anything: every exact
    // group folds, member-complete, into the semantic group of its
    // canonical key.
    for (key, group) in &exact {
        let canon = policy.group_key(&Interest::new(key));
        let folded = semantic
            .get(&canon)
            .unwrap_or_else(|| panic!("group {key} vanished (canonical {canon})"));
        for m in &group.members {
            assert!(folded.contains(m), "{m} lost from {key} -> {canon}");
        }
    }
    // And the semantic group count never exceeds the number of distinct
    // canonical keys among my own interests.
    let canon_keys: std::collections::BTreeSet<String> =
        own.iter().map(|i| policy.group_key(i)).collect();
    assert!(semantic.len() <= canon_keys.len());
}

#[test]
fn semantic_matching_only_merges_never_splits() {
    // Replays the seeds retained from the proptest era before fresh cases.
    let cfg = cfg().with_regressions_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/properties.proptest-regressions"
    ));
    check(
        &cfg,
        "semantic_matching_only_merges_never_splits",
        |g| {
            (
                gen_interests(g),
                gen_neighbors(g),
                gen_letter_pairs(g, "abcdef", 6),
            )
        },
        |(own, neighbors, taught)| {
            assert_semantic_only_merges(own, neighbors, taught);
        },
    );
}

/// The shrunk counterexample behind the retained regression seed
/// (`tests/properties.proptest-regressions`), pinned explicitly: teaching
/// `c=b`, `a=b` merges the `a` and `b` groups, which once looked like a
/// "vanished" exact group.
#[test]
fn semantic_merge_regression_case() {
    let own = vec![Interest::new("a")];
    let neighbors = vec![("n0".to_owned(), vec![Interest::new("b")])];
    let taught = vec![
        ("c".to_owned(), "b".to_owned()),
        ("a".to_owned(), "b".to_owned()),
        ("a".to_owned(), "a".to_owned()),
    ];
    assert_semantic_only_merges(&own, &neighbors, &taught);
}

// ---------------------------------------------------------------------
// Simulator substrate
// ---------------------------------------------------------------------

#[test]
fn random_waypoint_never_escapes_its_area() {
    check(
        &cfg(),
        "random_waypoint_never_escapes_its_area",
        |g| (g.any_u64(), g.f64_in(10.0, 200.0), g.f64_in(10.0, 200.0)),
        |&(seed, w, h)| {
            let area = Rect::sized(w, h);
            let mut m = RandomWaypoint::new(
                area,
                area.center(),
                (0.5, 3.0),
                (Duration::ZERO, Duration::from_secs(10)),
                SimRng::from_seed(seed),
            );
            for s in (0..600).step_by(7) {
                let p = m.position(SimTime::from_secs(s));
                assert!(area.contains(p), "escaped at {s}s: {p}");
            }
        },
    );
}

#[test]
fn random_walk_never_escapes_its_area() {
    check(
        &cfg(),
        "random_walk_never_escapes_its_area",
        |g| g.any_u64(),
        |&seed| {
            let area = Rect::sized(30.0, 30.0);
            let mut m = RandomWalk::new(
                area,
                Point2::new(15.0, 15.0),
                1.4,
                Duration::from_secs(3),
                SimRng::from_seed(seed),
            );
            for s in 0..300 {
                assert!(area.contains(m.position(SimTime::from_secs(s))));
            }
        },
    );
}

#[test]
fn mobility_is_a_function_of_time() {
    check(
        &cfg(),
        "mobility_is_a_function_of_time",
        |g| {
            let seed = g.any_u64();
            let queries = g.vec_of(19, |g| g.u64(500));
            (seed, queries)
        },
        |(seed, queries)| {
            if queries.is_empty() {
                return;
            }
            // Arbitrary (even non-monotonic) query orders give identical
            // answers to a fresh instance queried in order.
            let area = Rect::sized(50.0, 50.0);
            let mk = || {
                RandomWaypoint::new(
                    area,
                    area.center(),
                    (1.0, 2.0),
                    (Duration::ZERO, Duration::from_secs(5)),
                    SimRng::from_seed(*seed),
                )
            };
            let mut scrambled = mk();
            let answers: Vec<(u64, Point2)> = queries
                .iter()
                .map(|&s| (s, scrambled.position(SimTime::from_secs(s))))
                .collect();
            let mut ordered = mk();
            // Warm the ordered instance to the horizon first.
            let max = *queries.iter().max().expect("non-empty");
            ordered.position(SimTime::from_secs(max));
            for (s, expected) in answers {
                assert_eq!(ordered.position(SimTime::from_secs(s)), expected);
            }
        },
    );
}

#[test]
fn summary_bounds_hold() {
    check(
        &cfg(),
        "summary_bounds_hold",
        |g| {
            let len = g.usize_in(1, 99);
            (0..len).map(|_| g.f64_in(0.0, 1e6)).collect::<Vec<f64>>()
        },
        |samples| {
            let s = Summary::from_samples(samples).expect("non-empty");
            assert!(s.min <= s.mean + 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.min <= s.p50 && s.p50 <= s.max);
            assert!(s.p50 <= s.p90 + 1e-9);
            assert!(s.std_dev >= 0.0);
        },
    );
}

#[test]
fn simtime_add_then_since_round_trips() {
    check(
        &cfg(),
        "simtime_add_then_since_round_trips",
        |g| (g.u64(1_000_000), g.u64(1_000_000)),
        |&(base, d)| {
            let t = SimTime::from_micros(base);
            let later = t + Duration::from_micros(d);
            assert_eq!(later.saturating_since(t), Duration::from_micros(d));
        },
    );
}
