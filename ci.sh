#!/usr/bin/env sh
# Local CI gate. Run before pushing; everything must pass offline — the
# workspace has no crates.io dependencies (see DESIGN.md §5).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline --workspace

# Scale smoke: a 100-node crowd must complete and report its numbers
# (wall-clock, events/s, trace memory, grid-vs-naive query cost,
# zero-alloc trace burst) — kept as a machine-readable artifact.
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100 --horizon 30 --json > BENCH_scale.json
cat BENCH_scale.json
