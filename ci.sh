#!/usr/bin/env sh
# Local CI gate. Run before pushing; everything must pass offline — the
# workspace has no crates.io dependencies (see DESIGN.md §5).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline --workspace
