#!/usr/bin/env sh
# Local CI gate. Run before pushing; everything must pass offline — the
# workspace has no crates.io dependencies (see DESIGN.md §5).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline --workspace

# Static analysis: determinism & robustness rules over every workspace
# .rs file (DESIGN.md §9 and §14). Exits 1 on any finding not covered by
# the committed lint.allow baseline, 2 on I/O or parse trouble or an
# ambiguous baseline — either way `set -e` stops the gate. The JSON
# report is committed alongside BENCH_scale.json so finding drift shows
# up in review; regenerating it must be a no-op against the checkout.
cargo run --release --offline -p ph-lint -- --workspace --format json > LINT.json
cat LINT.json
git diff --exit-code -- LINT.json

# The lint's own golden corpus, call-graph, and lexer-fuzz suites (also
# covered by the workspace test run above; named here so a corpus break
# reads as a lint failure, not a generic test failure).
cargo test -q --offline -p ph-lint --test golden --test graph_reachability --test lexer_prop

# Lint self-test: inject one violation of each syntax-aware rule family
# into real source, assert the prebuilt binary catches it (nonzero exit),
# restore. The canaries are only lexed, never compiled.
restore_lint_canaries() {
    for f in crates/peerhood/src/sim.rs crates/netsim/src/trace.rs crates/codec/src/wire.rs; do
        if [ -f "$f.lintbak" ]; then mv "$f.lintbak" "$f"; fi
    done
}
trap restore_lint_canaries EXIT

expect_lint_failure() {
    if target/release/ph-lint --workspace > /dev/null 2>&1; then
        echo "lint self-test: injected $1 violation was NOT caught"
        exit 1
    fi
    restore_lint_canaries
    echo "lint self-test: $1 caught"
}

# digest-taint: a wall-clock read inside the digest root itself.
cp crates/peerhood/src/sim.rs crates/peerhood/src/sim.rs.lintbak
sed -i '0,/let t0 = self.collect_timing.then(Instant::now);/s//&\n        let _canary = Instant::now();/' \
    crates/peerhood/src/sim.rs
expect_lint_failure digest-taint

# epoch-frozen-mutation: a mutable borrow of the frozen epoch view.
cp crates/peerhood/src/sim.rs crates/peerhood/src/sim.rs.lintbak
cat >> crates/peerhood/src/sim.rs <<'EOF'
impl EpochWorker {
    fn lint_canary(&mut self) {
        let _grab = &mut self.view;
    }
}
EOF
expect_lint_failure epoch-frozen-mutation

# outbox-commutativity: a non-additive merge on the outbox stats type.
cp crates/netsim/src/trace.rs crates/netsim/src/trace.rs.lintbak
cat >> crates/netsim/src/trace.rs <<'EOF'
impl TraceStats {
    fn absorb(&mut self, other: &TraceStats) {
        self.events_recorded = other.events_recorded;
    }
}
EOF
expect_lint_failure outbox-commutativity

# unbounded-decode-allocation: an allocation sized by a raw wire length.
cp crates/codec/src/wire.rs crates/codec/src/wire.rs.lintbak
cat >> crates/codec/src/wire.rs <<'EOF'
fn lint_canary(input: &[u8]) {
    let claim = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let _buf: Vec<u8> = Vec::with_capacity(claim);
}
EOF
expect_lint_failure unbounded-decode-allocation
trap - EXIT

# Scale smoke: the 100- and 1000-node crowds run twice — pure serial, then
# through the parallel epoch engine (`--threads 4 --selfcheck`, which also
# reruns serially in-process and exits nonzero if any digest diverges).
# Both reports land in BENCH_scale.json, so the perf trajectory of each
# arm is tracked over time.
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100,1000 --horizon 30 --json > BENCH_scale_serial.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100,1000 --horizon 30 --threads 4 --selfcheck --json \
    > BENCH_scale_threads4.tmp.json

# Belt and braces on top of --selfcheck: the two artifacts must agree on
# every trace digest, size by size.
d_serial=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_serial.tmp.json)
d_par=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_threads4.tmp.json)
test "$d_serial" = "$d_par"

# Serial throughput floor: fail if events/s drops well below the recorded
# baseline for this scenario. Baseline 600k events/s — the reference
# single-core container jitters roughly 400k (cold cache) to 940k run to
# run under the region-sharded engine, so the floor (390k) trips on real
# regressions, not scheduler noise.
grep -m1 -o '"events_per_sec": [0-9.]*' BENCH_scale_serial.tmp.json \
    | awk -F': ' 'BEGIN { floor = 600000 * 0.65 }
        { if ($2 + 0 < floor) { print "events/s " $2 " below floor " floor; exit 1 }
          print "events/s " $2 " ok (floor " floor ")" }'

# Crowd-scale smoke: 100k nodes through the region-sharded engine, serial
# and `--threads 4 --selfcheck` (which reruns the same crowd through the
# serial-merge baseline in-process and exits nonzero on any digest or
# stats divergence). Horizon 10 keeps the pair around twenty seconds of
# wall clock. Baseline 250k events/s at this size (measured 240k–260k);
# the floor (150k) trips on real regressions.
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100000 --horizon 10 --json > BENCH_scale_100k_serial.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100000 --horizon 10 --threads 4 --selfcheck --json \
    > BENCH_scale_100k_threads4.tmp.json

d_100k_serial=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_100k_serial.tmp.json)
d_100k_par=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_100k_threads4.tmp.json)
test "$d_100k_serial" = "$d_100k_par"
grep -m1 -o '"events_per_sec": [0-9.]*' BENCH_scale_100k_serial.tmp.json \
    | awk -F': ' 'BEGIN { floor = 250000 * 0.60 }
        { if ($2 + 0 < floor) { print "100k events/s " $2 " below floor " floor; exit 1 }
          print "100k events/s " $2 " ok (floor " floor ")" }'

# Parallel speedup gate: on hosts with >= 4 hardware threads the lane-epoch
# engine must actually scale — 100k events/s under --threads 4 at least
# 1.5x the serial run (the acceptance target is 2x; the CI floor leaves
# room for noisy shared runners). Hosts with fewer cores can only verify
# digest equality, so they skip the ratio and say so.
cores=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n1 )
if [ "$cores" -ge 4 ]; then
    es_s=$(grep -m1 -o '"events_per_sec": [0-9.]*' BENCH_scale_100k_serial.tmp.json \
        | awk -F': ' '{print $2}')
    es_p=$(grep -m1 -o '"events_per_sec": [0-9.]*' BENCH_scale_100k_threads4.tmp.json \
        | awk -F': ' '{print $2}')
    awk -v s="$es_s" -v p="$es_p" 'BEGIN {
        ratio = p / s
        if (ratio < 1.5) { printf "100k threads4 speedup %.2fx below 1.5x floor\n", ratio; exit 1 }
        printf "100k threads4 speedup %.2fx ok (floor 1.5x)\n", ratio }'
else
    echo "host has $cores hardware thread(s); skipping the threads4 speedup gate"
fi

# The 1M-node acceptance run (~80 s wall, ~5 GB RSS) is too heavy for the
# every-push gate. Set PH_CI_MILLION=1 to re-measure it here; otherwise
# the committed BENCH_million.json snapshot is merged into BENCH_scale.json
# unchanged so the scale record always carries the million-node datapoint.
if [ "${PH_CI_MILLION:-0}" = "1" ]; then
    cargo run --release --offline -p ph-harness --bin repro -- \
        crowd --nodes 1000000 --horizon 10 --json > BENCH_million.json
fi
test -f BENCH_million.json
grep -q '"nodes": 1000000' BENCH_million.json

# Fault-injection smoke: the same crowds under the "lossy" profile (10%
# BT frame loss + burst episodes, recovery enabled). The faulted runs
# must be just as deterministic — serial and `--threads 4 --selfcheck`
# digests agree — and the faults must actually fire (frames dropped).
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100,1000 --horizon 30 --faults lossy --json \
    > BENCH_scale_faulted_serial.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    crowd --nodes 100,1000 --horizon 30 --faults lossy --threads 4 --selfcheck --json \
    > BENCH_scale_faulted_threads4.tmp.json

d_fserial=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_faulted_serial.tmp.json)
d_fpar=$(grep -o '"digest": "[0-9a-f]*"' BENCH_scale_faulted_threads4.tmp.json)
test "$d_fserial" = "$d_fpar"
grep -m1 -o '"frames_dropped": [0-9]*' BENCH_scale_faulted_serial.tmp.json \
    | awk -F': ' '{ if ($2 + 0 == 0) { print "lossy profile dropped no frames"; exit 1 }
                    print "faulted run dropped " $2 " frames" }'

# Gossip smoke: 3 disjoint radio bubbles bridged by 2 ferries. The
# epidemic layer must deliver the bubble-0 blob to at least 95% of the
# members in the fault-free run (the deterministic default reaches 1.0,
# full membership convergence included), and the trace digest — which
# folds the gossip eager/lazy/graft/prune/duplicate counters — must be
# bit-identical serial vs `--threads 4`, with and without the lossy
# fault profile.
cargo run --release --offline -p ph-harness --bin repro -- \
    bubbles --json > BENCH_bubbles_serial.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    bubbles --threads 4 --json > BENCH_bubbles_threads4.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    bubbles --faults lossy --json > BENCH_bubbles_lossy.tmp.json
cargo run --release --offline -p ph-harness --bin repro -- \
    bubbles --faults lossy --threads 4 --json > BENCH_bubbles_lossy_threads4.tmp.json

d_bserial=$(grep -o '"digest": "[0-9a-f]*"' BENCH_bubbles_serial.tmp.json)
d_bpar=$(grep -o '"digest": "[0-9a-f]*"' BENCH_bubbles_threads4.tmp.json)
test "$d_bserial" = "$d_bpar"
d_blserial=$(grep -o '"digest": "[0-9a-f]*"' BENCH_bubbles_lossy.tmp.json)
d_blpar=$(grep -o '"digest": "[0-9a-f]*"' BENCH_bubbles_lossy_threads4.tmp.json)
test "$d_blserial" = "$d_blpar"
rm -f BENCH_bubbles_lossy_threads4.tmp.json

grep -m1 -o '"delivery_ratio": [0-9.]*' BENCH_bubbles_serial.tmp.json \
    | awk -F': ' '{ if ($2 + 0 < 0.95) { print "bubbles delivery ratio " $2 " below 0.95"; exit 1 }
                    print "bubbles delivery ratio " $2 " ok (floor 0.95)" }'
grep -m1 -o '"convergence_ratio": [0-9.]*' BENCH_bubbles_serial.tmp.json \
    | awk -F': ' '{ if ($2 + 0 < 0.999) { print "bubbles convergence " $2 " below 1.0"; exit 1 }
                    print "bubbles convergence " $2 " ok" }'

# Live-serving smoke: a few hundred real TCP clients against the reactor
# (DESIGN.md §11). Short on purpose — seconds, not minutes. At this load
# the server must shed nobody and keep p99 under a generous 2s ceiling
# (the reference single-core container measures p99 around 10ms; the
# ceiling trips on stalls and lost wakeups, not scheduler noise).
cargo run --release --offline -p ph-harness --bin repro -- \
    live --clients 200 --requests 10 --workers 2 --shards 1 --json \
    > BENCH_live.tmp.json

grep -m1 -o '"errors": [0-9]*' BENCH_live.tmp.json \
    | awk -F': ' '{ if ($2 + 0 != 0) { print "live smoke had " $2 " errors"; exit 1 }
                    print "live smoke errors 0 ok" }'
grep -m1 -o '"shed": [0-9]*' BENCH_live.tmp.json \
    | awk -F': ' '{ if ($2 + 0 != 0) { print "live smoke shed " $2 " clients"; exit 1 }
                    print "live smoke shed 0 ok" }'
grep -m1 -o '"responses": [0-9]*' BENCH_live.tmp.json \
    | awk -F': ' '{ if ($2 + 0 != 2000) { print "live smoke responses " $2 " != 2000"; exit 1 }
                    print "live smoke responses " $2 " ok" }'
grep -m1 -o '"p99_us": [0-9]*' BENCH_live.tmp.json \
    | awk -F': ' 'BEGIN { ceiling = 2000000 }
        { if ($2 + 0 > ceiling) { print "live p99 " $2 "us above ceiling " ceiling "us"; exit 1 }
          print "live p99 " $2 "us ok (ceiling " ceiling "us)" }'

mv BENCH_live.tmp.json BENCH_live.json
cat BENCH_live.json

{
    printf '{\n"serial": '
    cat BENCH_scale_serial.tmp.json
    printf ',\n"threads4": '
    cat BENCH_scale_threads4.tmp.json
    printf ',\n"crowd100k_serial": '
    cat BENCH_scale_100k_serial.tmp.json
    printf ',\n"crowd100k_threads4": '
    cat BENCH_scale_100k_threads4.tmp.json
    printf ',\n"million": '
    cat BENCH_million.json
    printf ',\n"faulted_serial": '
    cat BENCH_scale_faulted_serial.tmp.json
    printf ',\n"faulted_threads4": '
    cat BENCH_scale_faulted_threads4.tmp.json
    printf ',\n"bubbles_serial": '
    cat BENCH_bubbles_serial.tmp.json
    printf ',\n"bubbles_threads4": '
    cat BENCH_bubbles_threads4.tmp.json
    printf ',\n"bubbles_lossy": '
    cat BENCH_bubbles_lossy.tmp.json
    printf '}\n'
} > BENCH_scale.json
rm -f BENCH_scale_serial.tmp.json BENCH_scale_threads4.tmp.json \
    BENCH_scale_100k_serial.tmp.json BENCH_scale_100k_threads4.tmp.json \
    BENCH_scale_faulted_serial.tmp.json BENCH_scale_faulted_threads4.tmp.json \
    BENCH_bubbles_serial.tmp.json BENCH_bubbles_threads4.tmp.json \
    BENCH_bubbles_lossy.tmp.json
cat BENCH_scale.json
