//! Quickstart: two strangers' phones meet, a group forms, a message flows.
//!
//! Run with `cargo run --example quickstart`.

use std::time::Duration;

use community::node::CommunityApp;
use community::profile::Profile;
use community::OpResult;
use netsim::geometry::Point2;
use netsim::world::NodeBuilder;
use netsim::SimTime;
use peerhood::sim::Cluster;

fn main() {
    // A deterministic world: same seed, same run.
    let mut cluster = Cluster::new(42);

    // Alice and Bob sit a few metres apart — within Bluetooth range.
    let alice = cluster.add_node(
        NodeBuilder::new("alice-n810").at(Point2::new(0.0, 0.0)),
        CommunityApp::with_member(
            "alice",
            "secret",
            Profile::new("Alice")
                .with_field("city", "Lappeenranta")
                .with_interests(["Football", "Photography"]),
        ),
    );
    let bob = cluster.add_node(
        NodeBuilder::new("bob-laptop").at(Point2::new(4.0, 0.0)),
        CommunityApp::with_member(
            "bob",
            "hunter2",
            Profile::new("Bob").with_interests(["football", "Chess"]),
        ),
    );

    cluster.start();

    // Let the PeerHood daemons inquire, discover each other, connect, and
    // let dynamic group discovery do its thing.
    cluster.run_until(SimTime::from_secs(30));

    println!("== after 30 simulated seconds ==");
    for (who, node) in [("alice", alice), ("bob", bob)] {
        let app = cluster.app(node);
        println!("{who} knows members: {:?}", app.known_members());
        for group in app.groups() {
            println!(
                "{who} sees group {:?} with members {:?}",
                group.label, group.members
            );
        }
        if let (Some(start), Some(formed)) = (app.started_at(), app.first_group_at()) {
            println!(
                "{who}'s first group formed {:.1} s after startup (no search, no join click)",
                formed.saturating_since(start).as_secs_f64()
            );
        }
    }

    // Alice messages Bob through the neighborhood.
    let op = cluster.with_app(alice, |app, ctx| {
        app.send_message("bob", "match tonight", "Kisapuisto at seven?", ctx)
    });
    cluster.run_for(Duration::from_secs(5));
    match &cluster.app(alice).outcome(op).expect("completed").result {
        OpResult::MessageResult { written: true } => println!("\nalice -> bob: delivered"),
        other => println!("\nmessage failed: {other:?}"),
    }
    let inbox = cluster
        .app(bob)
        .store()
        .active_account()
        .expect("logged in")
        .mailbox
        .inbox()
        .to_vec();
    for mail in inbox {
        println!("bob's inbox: {mail}");
    }
}
