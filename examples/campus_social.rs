//! Campus walk: a student crosses the university and groups form and
//! dissolve around her as she passes different circles of people.
//!
//! The thesis motivates exactly this: "social networking on top of PeerHood
//! is very much feasible in instant local communities like in university"
//! (§5.1), with membership tracking arrival and departure automatically.
//!
//! Run with `cargo run --example campus_social`.

use community::node::CommunityApp;
use community::profile::Profile;
use community::GroupEvent;
use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};
use peerhood::sim::Cluster;

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

fn main() {
    let mut cluster = Cluster::new(7);

    // The cafeteria crowd at x = 0: football people.
    for (i, name) in ["antti", "mikko"].iter().enumerate() {
        cluster.add_node(
            NodeBuilder::new(format!("{name}-phone"))
                .at(Point2::new(i as f64 * 2.0, 2.0))
                .with_technologies([Technology::Bluetooth]),
            member(name, &["football", "lunch"]),
        );
    }
    // The library crowd at x = 120: chess people.
    for (i, name) in ["sofia", "ville"].iter().enumerate() {
        cluster.add_node(
            NodeBuilder::new(format!("{name}-phone"))
                .at(Point2::new(120.0 + i as f64 * 2.0, 2.0))
                .with_technologies([Technology::Bluetooth]),
            member(name, &["chess", "databases"]),
        );
    }

    // Emma walks from the cafeteria to the library over four minutes,
    // interested in both football and chess.
    let emma = cluster.add_node(
        NodeBuilder::new("emma-n810")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(2.0, 0.0)),
                (SimTime::from_secs(90), Point2::new(2.0, 0.0)), // coffee first
                (SimTime::from_secs(240), Point2::new(121.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        member("emma", &["Football", "Chess"]),
    );

    cluster.start();
    cluster.run_until(SimTime::from_secs(420));

    println!("Emma's walk across campus — group membership timeline:\n");
    for (at, event) in cluster.app(emma).group_events() {
        let line = match event {
            GroupEvent::GroupFormed { key, members } => {
                format!("group '{key}' formed with {members:?}")
            }
            GroupEvent::GroupDissolved { key } => format!("group '{key}' dissolved"),
            GroupEvent::MemberJoined { key, member } => {
                format!("{member} joined '{key}'")
            }
            GroupEvent::MemberLeft { key, member } => format!("{member} left '{key}'"),
        };
        println!("  [{at}] {line}");
    }

    println!("\nEmma's groups at the library:");
    for g in cluster.app(emma).groups() {
        println!("  {:?}: {:?}", g.label, g.members);
    }

    // The football group followed her out of range; the chess group formed
    // on arrival — all without a single search or join click.
    let keys: Vec<String> = cluster
        .app(emma)
        .groups()
        .iter()
        .map(|g| g.key.clone())
        .collect();
    assert!(
        keys.contains(&"chess".to_owned()),
        "chess group at the library"
    );
    assert!(
        !keys.contains(&"football".to_owned()),
        "football group dissolved on the way"
    );
    println!("\n(dynamic group discovery tracked arrival and departure automatically)");
}
