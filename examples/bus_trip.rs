//! Bus trip: an instantaneous social network forms among passengers and
//! dissolves when one gets off — the thesis's "mobile community like in
//! bus or airplane while travelling" (§5.1), including its noted
//! disadvantage: "some long distance traveling members could never be
//! together again".
//!
//! Run with `cargo run --example bus_trip`.

use std::time::Duration;

use community::node::CommunityApp;
use community::profile::Profile;
use community::{OpResult, SharedOutcome};
use netsim::geometry::Point2;
use netsim::geometry::Vec2;
use netsim::mobility::{Offset, ScriptedPath};
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};
use peerhood::sim::Cluster;

fn main() {
    let mut cluster = Cluster::new(11);

    // The bus drives 2 km in 5 minutes; passengers share its trajectory
    // with small seat offsets, so they stay in mutual Bluetooth range for
    // the whole ride.
    let route = ScriptedPath::new(vec![
        (SimTime::from_secs(0), Point2::new(0.0, 0.0)),
        (SimTime::from_secs(300), Point2::new(2_000.0, 0.0)),
    ]);
    let seats = [
        ("matti", Vec2::new(0.0, 0.0)),
        ("liisa", Vec2::new(1.0, 1.0)),
    ];
    let mut nodes = Vec::new();
    for (name, seat) in seats {
        nodes.push(
            cluster.add_node(
                NodeBuilder::new(format!("{name}-phone"))
                    .moving(Offset::new(route.clone(), seat))
                    .with_technologies([Technology::Bluetooth]),
                CommunityApp::with_member(
                    name,
                    "pw",
                    Profile::new(name).with_interests(["travel", "Music"]),
                ),
            ),
        );
    }
    // Pekka gets off halfway and stays at the stop.
    let pekka_route = ScriptedPath::new(vec![
        (SimTime::from_secs(0), Point2::new(2.0, 0.5)),
        (SimTime::from_secs(150), Point2::new(1_000.0, 0.5)),
        (SimTime::from_secs(151), Point2::new(1_000.0, 20.0)),
    ]);
    let matti = nodes[0];
    let liisa = nodes[1];
    let pekka = cluster.add_node(
        NodeBuilder::new("pekka-phone")
            .moving(pekka_route)
            .with_technologies([Technology::Bluetooth]),
        CommunityApp::with_member(
            "pekka",
            "pw",
            Profile::new("Pekka").with_interests(["travel"]),
        ),
    );
    let _ = pekka;

    cluster.start();
    cluster.run_until(SimTime::from_secs(60));

    println!("== one minute into the ride ==");
    for g in cluster.app(matti).groups() {
        println!("matti's group {:?}: {:?}", g.label, g.members);
    }

    // Liisa shares her playlist with trusted friends; matti asks for it.
    cluster.with_app(liisa, |app, _| {
        app.add_trusted("matti").expect("logged in");
        app.store_mut()
            .require_active()
            .expect("logged in")
            .shared
            .share("roadtrip.m3u", "playlist", b"track one\ntrack two".to_vec());
    });
    let op = cluster.with_app(matti, |app, ctx| app.view_shared_content("liisa", ctx));
    cluster.run_for(Duration::from_secs(10));
    match &cluster.app(matti).outcome(op).expect("completed").result {
        OpResult::SharedContent(SharedOutcome::Listing(items)) => {
            println!("\nliisa shares with matti: {items:?}");
        }
        other => println!("\nsharing failed: {other:?}"),
    }

    // Ride on past Pekka's stop.
    cluster.run_until(SimTime::from_secs(300));
    println!("\n== end of the ride (pekka got off at 1 km) ==");
    for g in cluster.app(matti).groups() {
        println!("matti's group {:?}: {:?}", g.label, g.members);
    }
    let travel = cluster
        .app(matti)
        .groups()
        .into_iter()
        .find(|g| g.key == "travel")
        .expect("travel group persists on the bus");
    assert!(
        !travel.members.contains(&"pekka".to_owned()),
        "pekka left the instantaneous social network"
    );
    println!("\n(pekka dropped out of the group when the bus left his stop behind)");
}
