//! Guidance system on top of PeerHood — the §4.4 companion application.
//!
//! "The guidance system offers guidance to travelers in some strange
//! environment into some selected destinations", using fixed Bluetooth
//! guidance points. A traveler walks a city-block grid; whenever they come
//! within Bluetooth range of a guidance point, their PTD connects to its
//! `Guidance` service, announces the destination, and receives the next
//! direction hint.
//!
//! Run with `cargo run --example guidance`.

use codec::Bytes;
use netsim::geometry::{Point2, Rect};
use netsim::mobility::ManhattanGrid;
use netsim::world::NodeBuilder;
use netsim::{SimRng, SimTime, Technology};
use peerhood::api::AppEvent;
use peerhood::app::{AppCtx, Application};
use peerhood::service::ServiceInfo;
use peerhood::sim::Cluster;

const SERVICE: &str = "Guidance";

/// A fixed guidance point that knows which way the railway station is.
struct GuidancePoint {
    hint: &'static str,
}

/// The traveler's PTD: asks every guidance point it meets.
#[derive(Default)]
struct Traveler {
    asked: usize,
    hints: Vec<String>,
}

enum Node {
    Point(GuidancePoint),
    Traveler(Traveler),
}

impl Application for Node {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        if let Node::Point(_) = self {
            ctx.peerhood()
                .register_service(ServiceInfo::new(SERVICE).with_attribute("kind", "city"));
        }
    }

    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match self {
            Node::Point(p) => {
                if let AppEvent::Data { conn, payload } = event {
                    // The traveler announces a destination; answer with the
                    // local direction hint.
                    let dest = String::from_utf8_lossy(&payload).into_owned();
                    let reply = format!("to {dest}: {hint}", hint = p.hint);
                    ctx.peerhood().send(conn, Bytes::from(reply.into_bytes()));
                }
            }
            Node::Traveler(t) => match event {
                AppEvent::DeviceAppeared(info) => {
                    ctx.peerhood().request_service_list(info.id);
                }
                AppEvent::ServiceList {
                    device, services, ..
                } if services.iter().any(|s| s.name() == SERVICE) => {
                    ctx.peerhood().connect(device, SERVICE);
                }
                AppEvent::Connected { conn, .. } => {
                    t.asked += 1;
                    ctx.peerhood()
                        .send(conn, Bytes::from_static(b"railway station"));
                }
                AppEvent::Data { conn, payload } => {
                    t.hints.push(String::from_utf8_lossy(&payload).into_owned());
                    ctx.peerhood().close(conn);
                }
                _ => {}
            },
        }
    }
}

fn main() {
    let mut cluster = Cluster::new(2008);

    // Four guidance points at street corners of a 200 m × 200 m district.
    let corners = [
        (Point2::new(50.0, 50.0), "head east along Kauppakatu"),
        (Point2::new(150.0, 50.0), "turn north at the market"),
        (
            Point2::new(50.0, 150.0),
            "the station is south-east of here",
        ),
        (Point2::new(150.0, 150.0), "two blocks north, you are close"),
    ];
    for (i, (pos, hint)) in corners.iter().enumerate() {
        cluster.add_node(
            NodeBuilder::new(format!("guide{i}"))
                .at(*pos)
                .with_technologies([Technology::Bluetooth]),
            Node::Point(GuidancePoint { hint }),
        );
    }

    // The traveler wanders the block grid for fifteen minutes.
    let traveler = cluster.add_node(
        NodeBuilder::new("traveler-ptd")
            .moving(ManhattanGrid::new(
                Rect::sized(200.0, 200.0),
                Point2::new(100.0, 100.0),
                50.0,
                1.4,
                SimRng::from_seed(5),
            ))
            .with_technologies([Technology::Bluetooth]),
        Node::Traveler(Traveler::default()),
    );

    cluster.start();
    cluster.run_until(SimTime::from_secs(15 * 60));

    let t = match cluster.app(traveler) {
        Node::Traveler(t) => t,
        Node::Point(_) => unreachable!("traveler node"),
    };
    println!(
        "traveler consulted {} guidance point encounters and heard:",
        t.asked
    );
    for hint in &t.hints {
        println!("  {hint}");
    }
    assert!(
        !t.hints.is_empty(),
        "a fifteen-minute grid walk must pass at least one corner"
    );
    println!("\n(location-aware guidance over PeerHood, exactly as §4.4 sketches)");
}
