//! Access control on top of PeerHood — the §4.4 companion application.
//!
//! "PTDs with wireless access control system can be used as keys for
//! locking or unlocking and provides access to locked resources and
//! places." This example builds that application *in the example itself*,
//! directly against the PeerHood middleware API — demonstrating that the
//! middleware serves applications beyond the social-networking one.
//!
//! A Bluetooth-controlled door offers an `AccessControl` service. A PTD
//! walking past connects automatically when in range and presents its key;
//! the door unlocks for authorized keys and re-locks when the holder walks
//! away (active monitoring).
//!
//! Run with `cargo run --example access_control`.

use codec::Bytes;
use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};
use peerhood::api::AppEvent;
use peerhood::app::{AppCtx, Application};
use peerhood::service::ServiceInfo;
use peerhood::sim::Cluster;
use peerhood::types::{ConnId, DeviceId};
use std::collections::BTreeSet;

const SERVICE: &str = "AccessControl";

/// The Bluetooth-controlled door.
#[derive(Default)]
struct Door {
    authorized: BTreeSet<String>,
    unlocked_for: Option<(ConnId, DeviceId, String)>,
    log: Vec<String>,
}

impl Application for Door {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.peerhood()
            .register_service(ServiceInfo::new(SERVICE).with_attribute("location", "lab 6604"));
    }

    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match event {
            AppEvent::Incoming { conn, device, .. } => {
                // Watch the key holder so we can re-lock on departure.
                ctx.peerhood().monitor(device);
                self.log
                    .push(format!("[{}] key holder {device} connected", ctx.now()));
                let _ = conn;
            }
            AppEvent::Data { conn, payload } => {
                let key = String::from_utf8_lossy(&payload).into_owned();
                if self.authorized.contains(&key) {
                    self.log.push(format!("[{}] UNLOCKED for {key}", ctx.now()));
                    self.unlocked_for = Some((conn, DeviceId::new(0), key));
                    ctx.peerhood().send(conn, Bytes::from_static(b"unlocked"));
                } else {
                    self.log.push(format!("[{}] REFUSED {key}", ctx.now()));
                    ctx.peerhood().send(conn, Bytes::from_static(b"refused"));
                }
            }
            AppEvent::Closed { .. }
            | AppEvent::MonitorAlert {
                appeared: false, ..
            } if self.unlocked_for.take().is_some() => {
                self.log
                    .push(format!("[{}] LOCKED (holder left)", ctx.now()));
            }
            _ => {}
        }
    }
}

/// A personal trusted device carrying a door key.
#[derive(Default)]
struct KeyFob {
    key: String,
    door_replies: Vec<String>,
}

impl Application for KeyFob {
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match event {
            AppEvent::DeviceAppeared(info) => {
                ctx.peerhood().request_service_list(info.id);
            }
            AppEvent::ServiceList {
                device, services, ..
            } if services.iter().any(|s| s.name() == SERVICE) => {
                ctx.peerhood().connect(device, SERVICE);
            }
            AppEvent::Connected { conn, .. } => {
                // Present the key the moment we are connected.
                ctx.peerhood()
                    .send(conn, Bytes::from(self.key.clone().into_bytes()));
            }
            AppEvent::Data { payload, .. } => {
                self.door_replies
                    .push(String::from_utf8_lossy(&payload).into_owned());
            }
            _ => {}
        }
    }
}

/// One cluster holds one application type; a small enum lets doors and
/// key fobs share the world.
enum Node {
    Door(Door),
    Fob(KeyFob),
}

impl Application for Node {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        match self {
            Node::Door(d) => d.on_start(ctx),
            Node::Fob(f) => f.on_start(ctx),
        }
    }
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match self {
            Node::Door(d) => d.on_event(event, ctx),
            Node::Fob(f) => f.on_event(event, ctx),
        }
    }
}

impl Node {
    fn door(&self) -> &Door {
        match self {
            Node::Door(d) => d,
            Node::Fob(_) => panic!("not a door"),
        }
    }
    fn fob(&self) -> &KeyFob {
        match self {
            Node::Fob(f) => f,
            Node::Door(_) => panic!("not a fob"),
        }
    }
}

fn main() {
    let mut cluster = Cluster::new(99);

    let door = cluster.add_node(
        NodeBuilder::new("lab-door")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth]),
        Node::Door(Door {
            authorized: ["key-bishal".to_owned()].into_iter().collect(),
            ..Door::default()
        }),
    );

    // Bishal walks to the door, stays a while, then leaves.
    let bishal = cluster.add_node(
        NodeBuilder::new("bishal-ptd")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(40.0, 0.0)),
                (SimTime::from_secs(40), Point2::new(3.0, 0.0)),
                (SimTime::from_secs(120), Point2::new(3.0, 0.0)),
                (SimTime::from_secs(160), Point2::new(60.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        Node::Fob(KeyFob {
            key: "key-bishal".to_owned(),
            ..KeyFob::default()
        }),
    );

    // A stranger tries the same door with the wrong key.
    let stranger = cluster.add_node(
        NodeBuilder::new("stranger-ptd")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(-50.0, 0.0)),
                (SimTime::from_secs(200), Point2::new(-50.0, 0.0)),
                (SimTime::from_secs(230), Point2::new(-3.0, 0.0)),
                (SimTime::from_secs(300), Point2::new(-3.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        Node::Fob(KeyFob {
            key: "key-forged".to_owned(),
            ..KeyFob::default()
        }),
    );

    cluster.start();
    cluster.run_until(SimTime::from_secs(360));

    println!("door event log:");
    for line in &cluster.app(door).door().log {
        println!("  {line}");
    }
    println!(
        "\nbishal's PTD heard: {:?}",
        cluster.app(bishal).fob().door_replies
    );
    println!(
        "stranger's PTD heard: {:?}",
        cluster.app(stranger).fob().door_replies
    );

    assert!(cluster
        .app(bishal)
        .fob()
        .door_replies
        .contains(&"unlocked".to_owned()));
    assert!(cluster
        .app(stranger)
        .fob()
        .door_replies
        .contains(&"refused".to_owned()));
    assert!(cluster
        .app(door)
        .door()
        .log
        .iter()
        .any(|l| l.contains("LOCKED (holder left)")));
    println!("\n(authorized key unlocked; door re-locked on departure; forged key refused)");
}
