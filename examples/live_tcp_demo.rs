//! Live demo: the very same daemon + community state machines running over
//! real loopback TCP sockets instead of the simulator.
//!
//! Run with `cargo run --example live_tcp_demo`. Finishes in a few seconds
//! of wall-clock time.

use std::time::Duration;

use community::node::CommunityApp;
use community::profile::Profile;
use community::OpResult;
use peerhood::live::LiveConfig;

fn main() -> std::io::Result<()> {
    let mut net = LiveConfig::default().network();
    let alice = net.spawn(
        "alice-host",
        CommunityApp::with_member(
            "alice",
            "pw",
            Profile::new("Alice").with_interests(["rust", "networks"]),
        ),
    )?;
    let bob = net.spawn(
        "bob-host",
        CommunityApp::with_member(
            "bob",
            "pw",
            Profile::new("Bob").with_interests(["Rust", "sauna"]),
        ),
    )?;
    net.start();

    println!("waiting for discovery + dynamic group formation over loopback TCP...");
    let formed = net.run_until(Duration::from_secs(10), |n| {
        !n.app(alice).groups().is_empty() && !n.app(bob).groups().is_empty()
    });
    assert!(formed, "groups must form over live TCP");
    for g in net.app(alice).groups() {
        println!("alice sees group {:?}: {:?}", g.label, g.members);
    }

    // A real message over a real socket.
    let op = net.with_app(alice, |app, ctx| {
        app.send_message("bob", "live", "these bytes crossed a real TCP socket", ctx)
    });
    let delivered = net.run_until(Duration::from_secs(10), |n| {
        n.app(alice).outcome(op).is_some()
    });
    assert!(delivered, "message op must complete");
    match &net.app(alice).outcome(op).expect("completed").result {
        OpResult::MessageResult { written: true } => println!("alice -> bob: delivered"),
        other => println!("message failed: {other:?}"),
    }
    let inbox = net
        .app(bob)
        .store()
        .active_account()
        .expect("logged in")
        .mailbox
        .inbox()
        .to_vec();
    for mail in inbox {
        println!("bob's inbox: {mail}");
    }
    println!("elapsed wall-clock: {}", net.now());
    Ok(())
}
