//! # peerhood-social — workspace root
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The functionality lives in
//! the member crates:
//!
//! * [`netsim`] — deterministic mobile-environment simulator;
//! * [`peerhood`] — the PeerHood middleware (daemon, library, drivers);
//! * [`community`] — PeerHood Community, the social-networking middleware
//!   with dynamic group discovery (the paper's contribution);
//! * [`sns`] — the centralized SNS baseline of Table 8;
//! * [`harness`] — the experiment harness and the `repro` binary.

#![forbid(unsafe_code)]

pub use community;
pub use harness;
pub use netsim;
pub use peerhood;
pub use sns;
